"""Certification engine: Theorem II.1 as executable mathematics.

:func:`certify` answers, for an op-pair ``(V, ⊕, ⊗, 0, 1)``: *is
``EoutᵀEin`` guaranteed to be an adjacency array for every graph?*

* If the three criteria hold (checked exhaustively on finite domains,
  by seeded search otherwise), the answer is yes — Theorem II.1's
  sufficiency direction, which the property-based test-suite re-validates
  on random graphs.

* If a criterion fails, the engine does what the paper's *proof* does:
  it builds the tiny witness graph of the corresponding lemma and
  demonstrates — by actually multiplying the incidence arrays under the
  faithful dense semantics of Definition I.3 — that the product is not an
  adjacency array of that graph:

  - **Lemma II.2** (zero sums, ``v ⊕ w = 0``): two parallel edges
    ``a → b`` with out-values ``v, w`` and in-values ``1``; the edge
    entry ``A(a, b) = (v ⊗ 1) ⊕ (w ⊗ 1) = 0`` vanishes.
  - **Lemma II.3** (zero divisors, ``v ⊗ w = 0``): one self-loop at
    ``a`` with ``Eout(k, a) = v``, ``Ein(k, a) = w``; the loop entry
    ``A(a, a) = v ⊗ w = 0`` vanishes.
  - **Lemma II.4** (0 not annihilating, ``v ⊗ 0 ≠ 0`` or ``0 ⊗ v ≠ 0``):
    self-loops at ``a`` and ``b`` with value ``v``; the off-diagonal
    entry ``A(a, b) = (v ⊗ 0) ⊕ (0 ⊗ v)`` appears although no edge
    ``a → b`` exists.

Because Lemma II.4's failure involves *unstored* zeros, its demonstration
requires ``mode="dense"`` — which is precisely why sparse kernels are only
trustworthy on certified algebras.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeySet
from repro.core.construction import (
    adjacency_array,
    is_adjacency_array_of_graph,
)
from repro.core.criteria import CriteriaResult, check_criteria
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.values.properties import DEFAULT_SAMPLES, PropertyReport
from repro.values.semiring import OpPair

__all__ = ["Witness", "Certification", "certify", "certify_cached",
           "witness_for_violation"]


@dataclass(frozen=True)
class Witness:
    """A concrete refutation of Theorem II.1(ii) for one op-pair.

    Attributes
    ----------
    kind:
        ``"zero_sum"``, ``"zero_divisor"`` or ``"annihilator"`` — which
        lemma's construction this is.
    values:
        The violating elements the construction was built from.
    graph:
        The witness graph ``G``.
    eout, ein:
        Valid incidence arrays of ``G`` (checked by construction).
    product:
        ``EoutᵀEin`` evaluated under dense (Definition I.3) semantics.
    """

    kind: str
    values: Tuple[Any, ...]
    graph: EdgeKeyedDigraph
    eout: AssociativeArray
    ein: AssociativeArray
    product: AssociativeArray

    @property
    def refutes(self) -> bool:
        """True when the product is *not* an adjacency array of the graph
        — i.e. the witness actually works."""
        return not is_adjacency_array_of_graph(self.product, self.graph)

    def explain(self) -> str:
        """Human-readable account of what goes wrong."""
        expected = sorted(self.graph.adjacency_pairs())
        actual = sorted(self.product.nonzero_pattern())
        return (
            f"[{self.kind}] values {self.values!r}: graph edges imply "
            f"adjacency pattern {expected}, but EoutᵀEin has nonzero "
            f"pattern {actual}")


@dataclass(frozen=True)
class Certification:
    """Outcome of :func:`certify` for one op-pair."""

    op_pair: OpPair
    criteria: CriteriaResult
    witness: Optional[Witness]

    @property
    def safe(self) -> bool:
        """Whether ``EoutᵀEin`` is certified to be an adjacency array for
        every graph over this op-pair (Theorem II.1)."""
        return self.criteria.satisfied and self.criteria.well_formed

    def summary(self) -> str:
        """Multi-line report: criteria verdicts plus witness, if any."""
        head = (f"{self.op_pair.display} over {self.op_pair.domain.name}: "
                + ("SAFE (criteria satisfied)" if self.safe
                   else "UNSAFE (criteria violated)"))
        lines = [head, self.criteria.describe()]
        if self.witness is not None:
            lines.append("witness: " + self.witness.explain())
        return "\n".join(lines)


def certify(
    op_pair: OpPair,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = None,
    build_witness: bool = True,
) -> Certification:
    """Check the criteria and, on violation, build a verified witness.

    The returned witness (if any) has been *validated*: its incidence
    product really fails Definition I.5.  If a raw violation's
    construction happens not to refute (possible only under randomized
    search noise on pathological ops), the engine searches the remaining
    violated criteria.
    """
    criteria = check_criteria(op_pair, samples=samples, seed=seed)
    witness = None
    if build_witness and not criteria.satisfied:
        witness = witness_for_violation(op_pair, criteria)
    return Certification(op_pair=op_pair, criteria=criteria, witness=witness)


#: Process-wide memo for :func:`certify_cached`, keyed by op-pair
#: *object identity* plus search parameters.  Each entry stores the
#: pair alongside its certification, which pins the object alive so
#: its ``id()`` can never be reused — a name-based key would let a
#: re-registered (or ad hoc) pair of the same name inherit a stale
#: verdict.  Certification is pure — an op-pair's operations and
#: domain are frozen — so caching across callers is safe; witnesses
#: are excluded (they carry arrays).
_CERTIFY_CACHE: dict = {}


def certify_cached(
    op_pair: OpPair,
    *,
    samples: int = DEFAULT_SAMPLES,
    seed: Optional[int] = 0xD4,
) -> Certification:
    """Memoised :func:`certify` without witness construction.

    Repeated certification of the same pair is the common case for
    consumers that gate many small decisions on the criteria — the
    expression optimizer re-checks the algebra at every candidate
    rewrite site, and the query service gates alternative query
    algebras per request.  One criteria search per (pair object,
    samples, seed) for the process lifetime.
    """
    from repro.obs.metrics import get_registry
    key = (id(op_pair), samples, seed)
    entry = _CERTIFY_CACHE.get(key)
    if entry is not None and entry[0] is op_pair:
        get_registry().counter(
            "certify_cache_hits_total",
            "Certification-cache hits (criteria searches avoided)").inc()
        return entry[1]
    get_registry().counter(
        "certify_cache_misses_total",
        "Certification-cache misses (criteria searches run)").inc()
    cert = certify(op_pair, samples=samples, seed=seed,
                   build_witness=False)
    _CERTIFY_CACHE[key] = (op_pair, cert)
    return cert


def witness_for_violation(
    op_pair: OpPair,
    criteria: CriteriaResult,
) -> Optional[Witness]:
    """Build the lemma construction for each violated criterion, returning
    the first one whose product verifiably fails to be an adjacency array."""
    candidates = []
    if not criteria.zero_sum_free and criteria.zero_sum_free.witness:
        candidates.append(("zero_sum", criteria.zero_sum_free.witness))
    if not criteria.no_zero_divisors and criteria.no_zero_divisors.witness:
        candidates.append(("zero_divisor", criteria.no_zero_divisors.witness))
    if not criteria.annihilator and criteria.annihilator.witness:
        candidates.append(("annihilator", criteria.annihilator.witness))
    for kind, values in candidates:
        w = _build_witness(op_pair, kind, tuple(values))
        if w is not None and w.refutes:
            return w
    return None


def _build_witness(op_pair: OpPair, kind: str,
                   values: Tuple[Any, ...]) -> Optional[Witness]:
    builder = {
        "zero_sum": _zero_sum_witness,
        "zero_divisor": _zero_divisor_witness,
        "annihilator": _annihilator_witness,
    }[kind]
    try:
        graph, eout, ein = builder(op_pair, values)
    except Exception:
        return None
    # The lemmas require *valid* incidence arrays; if a violating element
    # was itself the zero (possible only for broken identities), the
    # construction degenerates and is rejected.
    from repro.graphs.incidence import (
        is_source_incidence_of,
        is_target_incidence_of,
    )
    if not (is_source_incidence_of(eout, graph)
            and is_target_incidence_of(ein, graph)):
        return None
    product = adjacency_array(eout, ein, op_pair, mode="dense",
                              kernel="generic")
    return Witness(kind=kind, values=values, graph=graph,
                   eout=eout, ein=ein, product=product)


def _zero_sum_witness(
    op_pair: OpPair, values: Tuple[Any, ...],
) -> Tuple[EdgeKeyedDigraph, AssociativeArray, AssociativeArray]:
    """Lemma II.2: nonzero v ⊕ w = 0 ⇒ two parallel edges a → b cancel."""
    v, w = values
    graph = EdgeKeyedDigraph([("k1", "a", "b"), ("k2", "a", "b")])
    zero = op_pair.zero
    one = op_pair.one
    k = graph.edge_keys
    eout = AssociativeArray({("k1", "a"): v, ("k2", "a"): w},
                            row_keys=k, col_keys=KeySet(["a"]), zero=zero)
    ein = AssociativeArray({("k1", "b"): one, ("k2", "b"): one},
                           row_keys=k, col_keys=KeySet(["b"]), zero=zero)
    return graph, eout, ein


def _zero_divisor_witness(
    op_pair: OpPair, values: Tuple[Any, ...],
) -> Tuple[EdgeKeyedDigraph, AssociativeArray, AssociativeArray]:
    """Lemma II.3: nonzero v ⊗ w = 0 ⇒ a self-loop's entry vanishes."""
    v, w = values
    graph = EdgeKeyedDigraph([("k", "a", "a")])
    zero = op_pair.zero
    k = graph.edge_keys
    eout = AssociativeArray({("k", "a"): v},
                            row_keys=k, col_keys=KeySet(["a"]), zero=zero)
    ein = AssociativeArray({("k", "a"): w},
                           row_keys=k, col_keys=KeySet(["a"]), zero=zero)
    return graph, eout, ein


def _annihilator_witness(
    op_pair: OpPair, values: Tuple[Any, ...],
) -> Tuple[EdgeKeyedDigraph, AssociativeArray, AssociativeArray]:
    """Lemma II.4: v ⊗ 0 ≠ 0 (or 0 ⊗ v ≠ 0) ⇒ two disjoint self-loops
    produce a spurious off-diagonal entry under dense evaluation."""
    (v,) = values
    graph = EdgeKeyedDigraph([("k1", "a", "a"), ("k2", "b", "b")])
    zero = op_pair.zero
    k = graph.edge_keys
    eout = AssociativeArray({("k1", "a"): v, ("k2", "b"): v},
                            row_keys=k, col_keys=KeySet(["a", "b"]),
                            zero=zero)
    ein = AssociativeArray({("k1", "a"): v, ("k2", "b"): v},
                           row_keys=k, col_keys=KeySet(["a", "b"]),
                           zero=zero)
    return graph, eout, ein

"""The introduction's data-processing pipeline, end to end.

"Constructing an adjacency array from data stored in an incidence array via
array multiplication is one of the most common and important steps in a
data processing system."  The pipeline packaged here is the one Figures 1–3
walk through:

1. **ingest** a table (``{row: {field: value(s)}}`` or CSV) and *explode*
   it into a sparse incidence view with ``field|value`` columns;
2. **select** incidence sub-arrays by column ranges or prefixes
   (``E1 = E(:, 'Genre|A : Genre|Z')``);
3. **correlate** two sub-arrays over a chosen op-pair
   (``A = E1ᵀ ⊕.⊗ E2``), optionally certifying the op-pair first;
4. hand the adjacency array to downstream analytics
   (:mod:`repro.graphs.algorithms`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Union

from repro.arrays.associative import AssociativeArray
from repro.arrays.io import explode_table
from repro.core.certify import Certification, certify
from repro.core.construction import correlate
from repro.values.semiring import OpPair, get_op_pair

__all__ = ["GraphConstructionPipeline"]


class GraphConstructionPipeline:
    """Table → incidence array → sub-arrays → adjacency arrays.

    Parameters
    ----------
    table:
        ``{row_key: {field: value_or_values}}`` — e.g. the music metadata
        table of Figure 1.
    separator:
        Field/value separator for exploded column keys (default ``"|"``).

    Examples
    --------
    >>> from repro.datasets.music import music_table
    >>> pipe = GraphConstructionPipeline(music_table())
    >>> e1 = pipe.select("Genre|*")
    >>> e2 = pipe.select("Writer|*")
    >>> adj = pipe.correlate("Genre|*", "Writer|*", "plus_times")
    >>> adj["Genre|Electronic", "Writer|Chad Anderson"]
    7
    """

    def __init__(
        self,
        table: Mapping[Any, Mapping[str, Any]],
        *,
        separator: str = "|",
        one: Any = 1,
        zero: Any = 0,
    ) -> None:
        self._separator = separator
        self._incidence = explode_table(
            table, separator=separator, one=one, zero=zero)
        self._certifications: Dict[str, Certification] = {}

    @property
    def incidence(self) -> AssociativeArray:
        """The full exploded incidence array ``E`` (Figure 1)."""
        return self._incidence

    def select(self, column_selector: Union[str, list, tuple]) -> AssociativeArray:
        """An incidence sub-array on all rows and selected columns.

        Accepts the D4M selector forms of
        :meth:`repro.arrays.keys.KeySet.select` — ranges
        (``'Genre|A : Genre|Z'``), prefixes (``'Genre|*'``), lists, or
        ``':'``.
        """
        return self._incidence.select(":", column_selector)

    def certification(self, op_pair: Union[str, OpPair]) -> Certification:
        """Certify (and memoize) an op-pair for adjacency construction."""
        pair = get_op_pair(op_pair) if isinstance(op_pair, str) else op_pair
        if pair.name not in self._certifications:
            self._certifications[pair.name] = certify(pair)
        return self._certifications[pair.name]

    def correlate(
        self,
        left_selector: Union[str, list, tuple],
        right_selector: Union[str, list, tuple],
        op_pair: Union[str, OpPair],
        *,
        require_safe: bool = False,
        mode: str = "sparse",
        kernel: str = "auto",
    ) -> AssociativeArray:
        """``E1ᵀ ⊕.⊗ E2`` for the selected column groups.

        With ``require_safe=True`` the op-pair is certified first and a
        :class:`ValueError` carrying the certification summary is raised
        if it violates the Theorem II.1 criteria — the pipeline analogue
        of "don't build graphs over unsafe algebras".
        """
        pair = get_op_pair(op_pair) if isinstance(op_pair, str) else op_pair
        if require_safe:
            cert = self.certification(pair)
            if not cert.safe:
                raise ValueError(
                    "op-pair rejected by Theorem II.1 certification:\n"
                    + cert.summary())
        e1 = self.select(left_selector)
        e2 = self.select(right_selector)
        if not pair.is_zero(0):
            # Reinterpret stored 1-entries over the op-pair's zero
            # (Figure 3: "their respective values of zero be it 0, −∞, or ∞").
            e1 = e1.with_zero(pair.zero)
            e2 = e2.with_zero(pair.zero)
        return correlate(e1, e2, pair, mode=mode, kernel=kernel)

    def field_values(self, field: str) -> list:
        """All observed values of one field, from the exploded columns."""
        prefix = f"{field}{self._separator}"
        return [c[len(prefix):]
                for c in self._incidence.col_keys.starting_with(prefix)]

"""Paper-figure-style text rendering of associative arrays.

The paper's figures display associative arrays as tables: row keys down the
left, column keys across the top, blank cells for zeros, and integer-valued
floats shown without a decimal point.  :func:`format_array` reproduces that
look in monospaced text; :func:`format_stacked` renders several arrays that
share keys under one header, the way Figures 3 and 5 stack op-pairs whose
results coincide.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence, Tuple

__all__ = ["format_value", "format_array", "format_stacked"]


def format_value(v: Any) -> str:
    """Render one value the way the figures do.

    Integer-valued floats lose the ``.0``; ±∞ render as ``inf``/``-inf``;
    frozensets render as ``{a,b}`` sorted; everything else via ``str``.
    """
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, float):
        if math.isinf(v):
            return "inf" if v > 0 else "-inf"
        if v.is_integer():
            return str(int(v))
        return f"{v:g}"
    if isinstance(v, (set, frozenset)):
        return "{" + ",".join(sorted(map(str, v))) + "}"
    return str(v)


def format_array(
    array,
    *,
    title: Optional[str] = None,
    hide_empty_rows: bool = False,
    hide_empty_cols: bool = False,
    max_col_width: int = 24,
) -> str:
    """Aligned table rendering of an :class:`AssociativeArray`.

    ``hide_empty_rows/cols`` reproduce how D4M displays omit all-zero rows
    (Figure 2's ``E2`` has no row for the writerless track).
    """
    view = array
    if hide_empty_rows or hide_empty_cols:
        rows = array.rows_nonempty() if hide_empty_rows else array.row_keys
        cols = array.cols_nonempty() if hide_empty_cols else array.col_keys
        view = array.select(list(rows), list(cols))
    rows = list(view.row_keys)
    cols = list(view.col_keys)
    cells = {(r, c): format_value(v) for r, c, v in view.entries()}

    def clip(s: str) -> str:
        return s if len(s) <= max_col_width else s[: max_col_width - 1] + "…"

    row_header_w = max([len(clip(str(r))) for r in rows], default=0)
    col_ws = []
    for c in cols:
        w = len(clip(str(c)))
        for r in rows:
            w = max(w, len(cells.get((r, c), "")))
        col_ws.append(w)

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * row_header_w + "  " + "  ".join(
        clip(str(c)).rjust(w) for c, w in zip(cols, col_ws))
    lines.append(header.rstrip())
    for r in rows:
        body = "  ".join(
            cells.get((r, c), "").rjust(w) for c, w in zip(cols, col_ws))
        lines.append((clip(str(r)).ljust(row_header_w) + "  " + body).rstrip())
    return "\n".join(lines)


def format_stacked(
    arrays_with_labels: Sequence[Tuple[str, Any]],
    *,
    title: Optional[str] = None,
    max_col_width: int = 24,
) -> str:
    """Render several same-shaped arrays stacked with per-block labels.

    Mirrors Figures 3/5: each block is one (possibly stacked) op-pair
    result, labelled like ``E1ᵀ +.× E2``.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, arr in arrays_with_labels:
        lines.append("")
        lines.append(f"-- {label} --")
        lines.append(format_array(arr, max_col_width=max_col_width))
    return "\n".join(lines)

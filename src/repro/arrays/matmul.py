"""Array multiplication ``C = A ⊕.⊗ B`` (Definition I.3).

``C(k1, k2) = ⊕_{k3 ∈ K3} A(k1, k3) ⊗ B(k3, k2)`` where ``K3`` is the
shared inner key set (``A``'s columns = ``B``'s rows).

Two evaluation modes are provided, and their relationship *is* the content
of Theorem II.1:

``mode="dense"``
    The definition verbatim: the ``⊕``-fold ranges over **all** of ``K3``
    in key order, with unstored entries contributing the op-pair's zero.
    Always mathematically faithful; cost ``O(|K1|·|K2|·|K3|)``.

``mode="sparse"``
    Folds only over inner keys where **both** operands store a value — the
    sparse shortcut every real system (D4M, GraphBLAS) takes.  Exact
    whenever the op-pair satisfies the paper's criteria (0 annihilates, so
    missing terms contribute 0; zero-sum-freeness/no-zero-divisors make
    dropped zeros harmless).  For non-compliant pairs the two modes can
    disagree — the property suite exhibits this on the paper's
    non-examples.

Fold order follows ``K3``'s total order (left fold) because ``⊕`` need not
be associative or commutative; ``⊗`` is always applied as
``A-value ⊗ B-value`` because it need not be commutative either.

The ``kernel`` argument selects an implementation: ``"generic"`` (pure
Python, any value set), or the vectorised kernels of
:mod:`repro.arrays.sparse_backend` for numeric ufunc op-pairs
(``"scipy"``, ``"reduceat"``, ``"dense_blocked"``).  ``"auto"`` picks the
fastest applicable one; all kernels are property-tested to agree with
``"generic"``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.arrays.associative import AssociativeArray
from repro.values.semiring import OpPair

__all__ = ["MatmulError", "multiply", "multiply_generic"]


class MatmulError(ValueError):
    """Raised for incompatible operands or unsupported kernel choices."""


def _check_conformable(a: AssociativeArray, b: AssociativeArray) -> None:
    if a.col_keys != b.row_keys:
        raise MatmulError(
            "inner key sets differ: A has columns "
            f"{tuple(a.col_keys)[:4]}..., B has rows "
            f"{tuple(b.row_keys)[:4]}...; Definition I.3 requires a shared "
            "K3 — re-embed with with_keys() first")


def multiply(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
    kernel: str = "auto",
) -> AssociativeArray:
    """``a ⊕.⊗ b`` over ``op_pair``; see module docstring for semantics.

    The result's key sets are ``(a.row_keys, b.col_keys)`` and its zero is
    ``op_pair.zero``; result entries equal to that zero are not stored.
    """
    _check_conformable(a, b)
    if mode not in ("sparse", "dense"):
        raise MatmulError(f"unknown mode {mode!r}; use 'sparse' or 'dense'")
    if kernel == "auto":
        kernel = _pick_kernel(a, b, op_pair, mode)
    if kernel == "generic":
        return multiply_generic(a, b, op_pair, mode=mode)
    from repro.arrays import sparse_backend
    return sparse_backend.multiply_vectorized(
        a, b, op_pair, kernel=kernel, mode=mode)


def _pick_kernel(a: AssociativeArray, b: AssociativeArray,
                 op_pair: OpPair, mode: str) -> str:
    """Choose the fastest applicable kernel.

    Vectorised kernels need numeric values and NumPy ufunc forms of both
    operations; `scipy` additionally needs the genuine ``+.×`` pair.  Tiny
    dict-backed operands stay on the generic kernel (conversion overhead
    dominates and exact Python value types are preserved); operands that
    already carry a numeric backend skip that bailout — their compiled
    form is paid for, so staying vectorised is free.
    """
    from repro.arrays import sparse_backend
    from repro.arrays.backend import VECTORIZE_MIN_NNZ
    # Size bailout first: vectorizable() promotes dict operands to the
    # columnar backend, which tiny operands should never pay for.
    native = a.backend == "numeric" and b.backend == "numeric"
    if not native and a.nnz + b.nnz < VECTORIZE_MIN_NNZ \
            and len(a.row_keys) * len(b.col_keys) < 4096:
        return "generic"
    if not sparse_backend.vectorizable(a, b, op_pair):
        return "generic"
    if mode == "dense":
        return "dense_blocked"
    if op_pair.name in ("plus_times", "nat_plus_times"):
        return "scipy"
    return "reduceat"


def multiply_generic(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
) -> AssociativeArray:
    """Reference implementation for arbitrary value sets.

    Sparse mode builds, for every output coordinate, the term list in
    inner-key order and left-folds ``⊕`` over it; dense mode folds over the
    entire inner key set.  Both fold ``A(k1,k3) ⊗ B(k3,k2)`` with operands
    in that order.
    """
    zero = op_pair.zero
    inner = a.col_keys
    if mode == "dense":
        return _generic_dense(a, b, op_pair)

    # Row-major view of A with inner keys ordered, and row-major view of B.
    inner_pos = inner.position_map()
    a_rows: Dict[Any, List[Tuple[int, Any, Any]]] = {}
    for (r, k), v in a.to_dict().items():
        a_rows.setdefault(r, []).append((inner_pos[k], k, v))
    for terms in a_rows.values():
        terms.sort(key=lambda t: t[0])
    b_rows: Dict[Any, List[Tuple[Any, Any]]] = {}
    for (k, c), v in b.to_dict().items():
        b_rows.setdefault(k, []).append((c, v))

    # Accumulate per-(row, col) term lists; iterating A's row entries in
    # ascending inner-key order keeps each term list fold-ordered.
    out: Dict[Tuple[Any, Any], Any] = {}
    started: Dict[Tuple[Any, Any], bool] = {}
    mul = op_pair.mul
    add = op_pair.add
    for r, row_terms in a_rows.items():
        for _pos, k, av in row_terms:
            for c, bv in b_rows.get(k, ()):
                term = mul(av, bv)
                rc = (r, c)
                if rc in started:
                    out[rc] = add(out[rc], term)
                else:
                    out[rc] = term
                    started[rc] = True
    data = {rc: v for rc, v in out.items()
            if not op_pair.is_zero(v)}
    return AssociativeArray(data, row_keys=a.row_keys, col_keys=b.col_keys,
                            zero=zero,
                            backend="dict" if a.pinned and b.pinned
                            else "auto")


def _generic_dense(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
) -> AssociativeArray:
    """Definition I.3 verbatim: ⊕-fold over the whole inner key set."""
    zero = op_pair.zero
    mul = op_pair.mul
    inner = tuple(a.col_keys)
    a_data = a.to_dict()
    b_data = b.to_dict()
    data: Dict[Tuple[Any, Any], Any] = {}
    for r in a.row_keys:
        for c in b.col_keys:
            terms = (mul(a_data.get((r, k), zero), b_data.get((k, c), zero))
                     for k in inner)
            total = op_pair.fold_add(terms)
            if not op_pair.is_zero(total):
                data[(r, c)] = total
    return AssociativeArray(data, row_keys=a.row_keys, col_keys=b.col_keys,
                            zero=zero,
                            backend="dict" if a.pinned and b.pinned
                            else "auto")

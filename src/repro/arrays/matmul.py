"""Array multiplication ``C = A ⊕.⊗ B`` (Definition I.3).

``C(k1, k2) = ⊕_{k3 ∈ K3} A(k1, k3) ⊗ B(k3, k2)`` where ``K3`` is the
shared inner key set (``A``'s columns = ``B``'s rows).

Two evaluation modes are provided, and their relationship *is* the content
of Theorem II.1:

``mode="dense"``
    The definition verbatim: the ``⊕``-fold ranges over **all** of ``K3``
    in key order, with unstored entries contributing the op-pair's zero.
    Always mathematically faithful; cost ``O(|K1|·|K2|·|K3|)``.

``mode="sparse"``
    Folds only over inner keys where **both** operands store a value — the
    sparse shortcut every real system (D4M, GraphBLAS) takes.  Exact
    whenever the op-pair satisfies the paper's criteria (0 annihilates, so
    missing terms contribute 0; zero-sum-freeness/no-zero-divisors make
    dropped zeros harmless).  For non-compliant pairs the two modes can
    disagree — the property suite exhibits this on the paper's
    non-examples.

Fold order follows ``K3``'s total order (left fold) because ``⊕`` need not
be associative or commutative; ``⊗`` is always applied as
``A-value ⊗ B-value`` because it need not be commutative either.

The ``kernel`` argument selects an implementation: ``"generic"`` (pure
Python, any value set), ``"sortmerge"`` (this module's vectorised
semiring SpGEMM for *any* op-pair with ufunc forms), or the kernels of
:mod:`repro.arrays.sparse_backend` (``"scipy"``, ``"reduceat"``,
``"dense_blocked"``).  ``"auto"`` picks the fastest applicable one; all
kernels are property-tested to agree with ``"generic"``.

The ``sortmerge`` kernel is the whole-catalog speed path: it joins A's
cached CSC against B's cached CSR on the shared inner coordinate codes
(a sort-merge join — ``searchsorted`` range expansion over the codes
both sides keep sorted), applies ``⊗`` as one ufunc call over the
gathered value arrays, then groups the ``(row, col)`` output pairs with
a stable lexicographic code sort and folds ``⊕`` with
``np.ufunc.reduceat``.  No scipy, no Python-level inner loop — so
``min.+``, ``max.min`` and every other certified ufunc pair run at
vectorised speed, not just ``+.×``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.arrays.associative import AssociativeArray
from repro.values.semiring import OpPair

__all__ = [
    "MatmulError",
    "multiply",
    "multiply_generic",
    "multiply_sortmerge",
    "sortmerge_coo",
    "fold_grouped",
    "preferred_vector_kernel",
    "calibrated_tiny_pick",
]

#: Rough cost model for the calibrated tiny-operand decision: promoting
#: one dict entry to the columnar backend (plus its share of the fixed
#: NumPy call overhead a vectorised kernel pays regardless of size) is
#: priced as this many extra vectorised terms per operand entry ...
PROMOTE_TERMS_PER_ENTRY = 8.0

#: ... plus this many terms of flat per-call overhead (≈ tens of µs at
#: typical sortmerge throughput).
VECTOR_CALL_OVERHEAD_TERMS = 4096.0


class MatmulError(ValueError):
    """Raised for incompatible operands or unsupported kernel choices."""


def _check_conformable(a: AssociativeArray, b: AssociativeArray) -> None:
    if a.col_keys != b.row_keys:
        raise MatmulError(
            "inner key sets differ: A has columns "
            f"{tuple(a.col_keys)[:4]}..., B has rows "
            f"{tuple(b.row_keys)[:4]}...; Definition I.3 requires a shared "
            "K3 — re-embed with with_keys() first")


def multiply(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
    kernel: str = "auto",
) -> AssociativeArray:
    """``a ⊕.⊗ b`` over ``op_pair``; see module docstring for semantics.

    The result's key sets are ``(a.row_keys, b.col_keys)`` and its zero is
    ``op_pair.zero``; result entries equal to that zero are not stored.
    """
    _check_conformable(a, b)
    if mode not in ("sparse", "dense"):
        raise MatmulError(f"unknown mode {mode!r}; use 'sparse' or 'dense'")
    if kernel == "auto":
        kernel = _pick_kernel(a, b, op_pair, mode)
    if kernel == "generic":
        return multiply_generic(a, b, op_pair, mode=mode)
    from repro.arrays import sparse_backend
    return sparse_backend.multiply_vectorized(
        a, b, op_pair, kernel=kernel, mode=mode)


def preferred_vector_kernel(op_pair: OpPair, mode: str) -> str:
    """The vectorised kernel ``auto`` prefers for a ufunc op-pair.

    ``scipy`` keeps the genuine ``+.×`` pair (its SpGEMM avoids the
    expansion buffer entirely); every other certified numeric pair with
    ufunc forms rides ``sortmerge``; dense mode uses the blocked dense
    fold.  The tiny-operand and vectorizability gates are the caller's
    job — this is just the preference order.
    """
    if mode == "dense":
        return "dense_blocked"
    if op_pair.name in ("plus_times", "nat_plus_times"):
        return "scipy"
    return "sortmerge"


def calibrated_tiny_pick(kernel: str, nnz_a: float, nnz_b: float,
                         inner: float) -> Optional[str]:
    """Calibrated generic-vs-vectorised decision for tiny dict operands.

    When the persistent calibration store (:mod:`repro.obs.calibration`)
    holds measured seconds-per-term for both ``"generic"`` and the
    candidate vectorised ``kernel``, compare predicted wall times
    instead of trusting the static nnz threshold: generic costs its
    rate × estimated terms, the vectorised kernel costs its rate ×
    (terms + a promotion/call-overhead surcharge — see
    :data:`PROMOTE_TERMS_PER_ENTRY` / :data:`VECTOR_CALL_OVERHEAD_TERMS`).
    Returns ``"generic"``, ``kernel``, or ``None`` when either rate is
    uncalibrated (the caller then falls back to the static threshold).
    """
    from repro.obs.calibration import get_calibration_store
    store = get_calibration_store()
    if store is None:
        return None
    generic_rate = store.rate("generic")
    vector_rate = store.rate(kernel)
    if generic_rate is None or vector_rate is None:
        return None
    terms = nnz_a * nnz_b / max(inner, 1.0)
    surcharge = (PROMOTE_TERMS_PER_ENTRY * (nnz_a + nnz_b)
                 + VECTOR_CALL_OVERHEAD_TERMS)
    if generic_rate * terms <= vector_rate * (terms + surcharge):
        return "generic"
    return kernel


def _pick_kernel(a: AssociativeArray, b: AssociativeArray,
                 op_pair: OpPair, mode: str) -> str:
    """Choose the fastest applicable kernel.

    Vectorised kernels need numeric values and NumPy ufunc forms of both
    operations; ``scipy`` additionally needs the genuine ``+.×`` pair —
    everything else ufunc-shaped rides ``sortmerge``.  Tiny dict-backed
    operands stay on the generic kernel (conversion overhead dominates
    and exact Python value types are preserved) unless the calibration
    store's measured per-kernel throughput says the vectorised kernel
    still wins (:func:`calibrated_tiny_pick`); operands that already
    carry a numeric backend skip that bailout — their compiled form is
    paid for, so staying vectorised is free.
    """
    from repro.arrays import sparse_backend
    from repro.arrays.backend import VECTORIZE_MIN_NNZ
    # Size bailout first: vectorizable() promotes dict operands to the
    # columnar backend, which tiny operands should never pay for.
    native = a.backend == "numeric" and b.backend == "numeric"
    if not native and a.nnz + b.nnz < VECTORIZE_MIN_NNZ \
            and len(a.row_keys) * len(b.col_keys) < 4096:
        if not (op_pair.has_ufuncs and op_pair.is_numeric):
            return "generic"
        candidate = preferred_vector_kernel(op_pair, mode)
        pick = calibrated_tiny_pick(candidate, float(a.nnz), float(b.nnz),
                                    float(len(a.col_keys)))
        if pick != candidate:       # "generic" or None (uncalibrated)
            return "generic"
        # Measured throughput says vectorise even here: fall through to
        # the vectorizability check (which may still veto on values).
    if not sparse_backend.vectorizable(a, b, op_pair):
        return "generic"
    return preferred_vector_kernel(op_pair, mode)


def multiply_generic(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
    *,
    mode: str = "sparse",
) -> AssociativeArray:
    """Reference implementation for arbitrary value sets.

    Sparse mode builds, for every output coordinate, the term list in
    inner-key order and left-folds ``⊕`` over it; dense mode folds over the
    entire inner key set.  Both fold ``A(k1,k3) ⊗ B(k3,k2)`` with operands
    in that order.
    """
    zero = op_pair.zero
    inner = a.col_keys
    if mode == "dense":
        return _generic_dense(a, b, op_pair)

    # Row-major view of A with inner keys ordered, and row-major view of B.
    inner_pos = inner.position_map()
    a_rows: Dict[Any, List[Tuple[int, Any, Any]]] = {}
    for (r, k), v in a.to_dict().items():
        a_rows.setdefault(r, []).append((inner_pos[k], k, v))
    for terms in a_rows.values():
        terms.sort(key=lambda t: t[0])
    b_rows: Dict[Any, List[Tuple[Any, Any]]] = {}
    for (k, c), v in b.to_dict().items():
        b_rows.setdefault(k, []).append((c, v))

    # Accumulate per-(row, col) term lists; iterating A's row entries in
    # ascending inner-key order keeps each term list fold-ordered.
    out: Dict[Tuple[Any, Any], Any] = {}
    started: Dict[Tuple[Any, Any], bool] = {}
    mul = op_pair.mul
    add = op_pair.add
    for r, row_terms in a_rows.items():
        for _pos, k, av in row_terms:
            for c, bv in b_rows.get(k, ()):
                term = mul(av, bv)
                rc = (r, c)
                if rc in started:
                    out[rc] = add(out[rc], term)
                else:
                    out[rc] = term
                    started[rc] = True
    data = {rc: v for rc, v in out.items()
            if not op_pair.is_zero(v)}
    return AssociativeArray(data, row_keys=a.row_keys, col_keys=b.col_keys,
                            zero=zero,
                            backend="dict" if a.pinned and b.pinned
                            else "auto")


# ---------------------------------------------------------------------------
# The sortmerge kernel: vectorised semiring SpGEMM for any ufunc op-pair
# ---------------------------------------------------------------------------

def _sorted_unique(codes: np.ndarray) -> np.ndarray:
    """Distinct values of an ascending int64 array (one linear pass)."""
    if codes.size == 0:
        return codes
    keep = np.empty(codes.size, dtype=bool)
    keep[0] = True
    np.not_equal(codes[1:], codes[:-1], out=keep[1:])
    return codes[keep]


def _range_expand(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], starts[i] + lens[i])`` ranges.

    The vectorised range-expansion idiom: ``repeat`` the starts, then
    add each element's offset within its own range.
    """
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.concatenate(([0], np.cumsum(lens)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, lens)
    return np.repeat(starts, lens) + within


def fold_grouped(
    sort_keys: Tuple[np.ndarray, ...],
    vals: np.ndarray,
    add_ufunc: np.ufunc,
) -> Tuple[Tuple[np.ndarray, ...], np.ndarray]:
    """Group consecutive equal key tuples and left-fold ``⊕`` per group.

    ``sort_keys`` are parallel int64 arrays already sorted so that equal
    key tuples are adjacent **and terms within a group sit in fold
    order** (ascending inner key — the caller's stable sort guarantees
    it).  Returns the per-group key arrays and the ``reduceat``-folded
    values.  Shared by the sortmerge product (grouping on (row, col))
    and the vectorised vector–matrix relaxation (grouping on the output
    coordinate alone).
    """
    n = int(vals.shape[0])
    if n == 0:
        return tuple(k[:0] for k in sort_keys), vals[:0]
    change = np.zeros(n, dtype=bool)
    change[0] = True
    for k in sort_keys:
        np.logical_or(change[1:], k[1:] != k[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    reduced = add_ufunc.reduceat(vals, starts)
    return tuple(k[starts] for k in sort_keys), reduced


def sortmerge_coo(
    a_inner: np.ndarray, a_outer: np.ndarray, a_vals: np.ndarray,
    b_inner: np.ndarray, b_outer: np.ndarray, b_vals: np.ndarray,
    op_pair: OpPair,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The sortmerge SpGEMM core on raw coordinate/value arrays.

    Both operands arrive as COO triples **sorted ascending by inner
    code**: for ``A`` that is its CSC order (inner = column code, outer
    = row code), for ``B`` its CSR order (inner = row code, outer =
    column code) — which is why the fused incidence-to-adjacency path
    can feed ``E``'s natural (row, col)-sorted arrays directly as
    ``Eᵀ``'s CSC without any re-sort.  Steps:

    1. **join** — intersect the distinct inner codes and locate each
       shared code's run on both sides with ``searchsorted``;
    2. **expand** — enumerate every ``A(i,k) ⊗ B(k,j)`` term via range
       expansion (shared codes ascending, so each output group's terms
       are generated in ascending inner-key order);
    3. **⊗** — one ufunc call over the gathered value arrays;
    4. **group + ⊕** — stable lexsort by (row, col) and
       ``ufunc.reduceat`` through :func:`fold_grouped`.

    Returns lex-sorted ``(rows, cols, vals)`` with exact zeros dropped,
    ready for ``AssociativeArray._from_numeric(presorted=True,
    filtered=True)``.
    """
    add_uf = op_pair.add.ufunc
    mul_uf = op_pair.mul.ufunc
    empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
             np.empty(0, dtype=np.float64))
    if a_vals.size == 0 or b_vals.size == 0:
        return empty

    # 1. Sort-merge join on the shared inner coordinate codes.
    shared = np.intersect1d(_sorted_unique(a_inner),
                            _sorted_unique(b_inner), assume_unique=True)
    if shared.size == 0:
        return empty
    a_lo = np.searchsorted(a_inner, shared, side="left")
    a_hi = np.searchsorted(a_inner, shared, side="right")
    b_lo = np.searchsorted(b_inner, shared, side="left")
    b_hi = np.searchsorted(b_inner, shared, side="right")
    a_runs = a_hi - a_lo
    b_runs = b_hi - b_lo

    # 2. Range expansion: every A entry of a shared code, then every
    # (A entry, B entry) pair within that code.
    a_take = _range_expand(a_lo, a_runs)
    code_of = np.repeat(np.arange(shared.size, dtype=np.int64), a_runs)
    fanout = b_runs[code_of]
    b_take = _range_expand(b_lo[code_of], fanout)
    out_rows = np.repeat(a_outer[a_take], fanout)
    out_cols = b_outer[b_take]

    # 3. One ⊗ over the gathered values (A-value ⊗ B-value, in order).
    prods = mul_uf(np.repeat(a_vals[a_take], fanout), b_vals[b_take])

    # 4. Stable group sort + ⊕ fold.  lexsort is stable, and step 2
    # generated terms in ascending inner-code order, so within each
    # (row, col) group the fold follows the inner key order exactly as
    # the generic kernel does.
    order = np.lexsort((out_cols, out_rows))
    (grp_rows, grp_cols), reduced = fold_grouped(
        (out_rows[order], out_cols[order]), prods[order], add_uf)
    keep = reduced != float(op_pair.zero)
    return grp_rows[keep], grp_cols[keep], reduced[keep]


def multiply_sortmerge(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
) -> AssociativeArray:
    """``a ⊕.⊗ b`` through the sortmerge kernel (sparse semantics).

    Joins ``a``'s cached CSC view against ``b``'s native (row, col)
    lex order — which *is* its CSR order — on the shared inner
    coordinate codes; see :func:`sortmerge_coo` for the steps.  Both
    operands must be vectorisable (ufunc op-pair, numeric backends);
    :func:`multiply` with ``kernel="sortmerge"`` routes here after
    validating that.
    """
    from repro.arrays import sparse_backend
    if not sparse_backend.vectorizable(a, b, op_pair):
        raise MatmulError(
            f"op-pair {op_pair.name!r} / operand values are not "
            "vectorisable; use kernel='generic'")
    nb_a = a.numeric_backend()
    nb_b = b.numeric_backend()
    a_data, a_rows, _indptr, perm = nb_a.csc()
    rows, cols, vals = sortmerge_coo(
        nb_a.cols[perm], a_rows, a_data,
        nb_b.rows, nb_b.cols, nb_b.vals, op_pair)
    return AssociativeArray._from_numeric(
        rows, cols, vals, row_keys=a.row_keys, col_keys=b.col_keys,
        zero=op_pair.zero, presorted=True, filtered=True)


def _generic_dense(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
) -> AssociativeArray:
    """Definition I.3 verbatim: ⊕-fold over the whole inner key set."""
    zero = op_pair.zero
    mul = op_pair.mul
    inner = tuple(a.col_keys)
    a_data = a.to_dict()
    b_data = b.to_dict()
    data: Dict[Tuple[Any, Any], Any] = {}
    for r in a.row_keys:
        for c in b.col_keys:
            terms = (mul(a_data.get((r, k), zero), b_data.get((k, c), zero))
                     for k in inner)
            total = op_pair.fold_add(terms)
            if not op_pair.is_zero(total):
                data[(r, c)] = total
    return AssociativeArray(data, row_keys=a.row_keys, col_keys=b.col_keys,
                            zero=zero,
                            backend="dict" if a.pinned and b.pinned
                            else "auto")

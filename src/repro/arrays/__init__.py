"""Associative array substrate (the D4M-style core).

Implements the paper's Definitions I.1–I.3:

* :mod:`repro.arrays.keys` — finite totally ordered key sets with
  D4M-style range/prefix selection (``'Genre|A : Genre|Z'``);
* :mod:`repro.arrays.associative` — :class:`AssociativeArray`
  ``A : K1 × K2 → V`` with transpose and sub-array selection;
* :mod:`repro.arrays.backend` — pluggable storage backends: dict
  storage for arbitrary value sets, persistent columnar/CSR storage
  for numeric fast paths;
* :mod:`repro.arrays.matmul` — array multiplication ``C = A ⊕.⊗ B`` with
  sparse and dense (Definition I.3) evaluation modes;
* :mod:`repro.arrays.elementwise` — element-wise ``⊕``/``⊗``;
* :mod:`repro.arrays.sparse_backend` — vectorised NumPy/SciPy kernels;
* :mod:`repro.arrays.io` — the Figure 1 exploded-view construction and
  TSV/CSV round-trips;
* :mod:`repro.arrays.printing` — paper-figure-style rendering.
"""

from repro.arrays.keys import KeyError_ as KeySelectorError  # noqa: F401
from repro.arrays.keys import KeySet
from repro.arrays.associative import AssociativeArray
from repro.arrays.matmul import MatmulError, multiply
from repro.arrays.elementwise import elementwise_add, elementwise_multiply
from repro.arrays.io import (
    explode_table,
    iter_tsv_triples,
    read_tsv_triples,
    write_tsv_triples,
)
from repro.arrays.printing import format_array, format_stacked

__all__ = [
    "KeySet",
    "KeySelectorError",
    "AssociativeArray",
    "MatmulError",
    "multiply",
    "elementwise_add",
    "elementwise_multiply",
    "explode_table",
    "iter_tsv_triples",
    "read_tsv_triples",
    "write_tsv_triples",
    "format_array",
    "format_stacked",
]

"""Row-partitioned parallel array multiplication.

Array multiplication is embarrassingly parallel over output rows:
``C = A ⊕.⊗ B`` splits into independent ``C[block, :] = A[block, :] ⊕.⊗ B``
row-block products — the standard 1-D decomposition of distributed
SpGEMM (and of D4M's own parallel maps).  This module provides that
decomposition on top of any kernel:

* ``executor="thread"`` (default): a thread pool.  The vectorised kernels
  spend their time in NumPy, which releases the GIL for the heavy ufunc
  work, so threads give genuine overlap without any serialisation cost.
* ``executor="process"``: a process pool for the pure-Python generic
  kernel on large value sets.  Operands are pickled; op-pairs travel *by
  registry name* (their operations may close over lambdas, which do not
  pickle), so process mode requires a registered pair.
* ``executor="serial"``: the decomposition without concurrency — useful
  for testing the partition/merge plumbing itself.

The partition/merge plumbing (:func:`partition_rows`, :func:`stack_rows`)
is exposed because it is independently useful (e.g. out-of-core row
sweeps).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeyError_, KeySet
from repro.arrays.matmul import MatmulError, multiply
from repro.values.semiring import OpPair, SemiringError
from repro.values.shipping import registered_name, resolve_registered_pair

__all__ = ["partition_rows", "stack_rows", "parallel_multiply"]


def partition_rows(array: AssociativeArray,
                   n_parts: int) -> List[AssociativeArray]:
    """Split into ≤ ``n_parts`` contiguous row-key blocks (column keys
    shared).  Blocks cover the row key set exactly, in order; empty
    blocks are omitted."""
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    rows = list(array.row_keys)
    if not rows:
        return [array]
    n_parts = min(n_parts, len(rows))
    size, extra = divmod(len(rows), n_parts)
    blocks: List[AssociativeArray] = []
    start = 0
    by_row: Dict[Any, List[Tuple[Any, Any]]] = {}
    for (r, c), v in array.to_dict().items():
        by_row.setdefault(r, []).append((c, v))
    for i in range(n_parts):
        stop = start + size + (1 if i < extra else 0)
        block_rows = rows[start:stop]
        start = stop
        if not block_rows:
            continue
        data = {(r, c): v
                for r in block_rows for c, v in by_row.get(r, ())}
        blocks.append(AssociativeArray(
            data, row_keys=KeySet(block_rows, presorted=True),
            col_keys=array.col_keys, zero=array.zero))
    return blocks


def stack_rows(blocks: Sequence[AssociativeArray]) -> AssociativeArray:
    """Concatenate row blocks with identical column key sets and zeros.

    Row key sets must be disjoint; the result's row key set is their
    (sorted) union.
    """
    if not blocks:
        raise ValueError("no blocks to stack")
    first = blocks[0]
    all_rows: List[Any] = []
    seen_rows: set = set()
    data: Dict[Tuple[Any, Any], Any] = {}
    for b in blocks:
        if b.col_keys != first.col_keys:
            raise KeyError_("blocks disagree on column key sets")
        if not _zero_eq(b.zero, first.zero):
            raise KeyError_("blocks disagree on the zero element")
        overlap = seen_rows.intersection(b.row_keys)
        if overlap:
            raise KeyError_(f"duplicate row keys across blocks: {overlap}")
        all_rows.extend(b.row_keys)
        seen_rows.update(b.row_keys)
        data.update(b.to_dict())
    return AssociativeArray(data, row_keys=KeySet(all_rows),
                            col_keys=first.col_keys, zero=first.zero)


def _zero_eq(a: Any, b: Any) -> bool:
    import math
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b


def _block_task(block: AssociativeArray, b: AssociativeArray,
                pair_name: str, mode: str, kernel: str) -> AssociativeArray:
    """Worker body (module-level so process pools can pickle it)."""
    pair = resolve_registered_pair(pair_name)
    return multiply(block, b, pair, mode=mode, kernel=kernel)


def parallel_multiply(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
    *,
    n_workers: int = 4,
    executor: str = "thread",
    mode: str = "sparse",
    kernel: str = "auto",
) -> AssociativeArray:
    """``a ⊕.⊗ b`` via row-partitioned fan-out; result equals
    :func:`repro.arrays.matmul.multiply` exactly (property-tested).

    Parameters mirror ``multiply`` plus ``n_workers`` and ``executor``
    (``"thread"``, ``"process"``, ``"serial"``).
    """
    if executor not in ("thread", "process", "serial"):
        raise MatmulError(f"unknown executor {executor!r}")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    blocks = partition_rows(a, n_workers)
    if len(blocks) == 1 or executor == "serial" or n_workers == 1:
        results = [_block_task(blk, b, _registered_name(op_pair), mode,
                               kernel)
                   for blk in blocks]
        return stack_rows(results)
    pair_name = _registered_name(op_pair)
    pool_cls = ThreadPoolExecutor if executor == "thread" \
        else ProcessPoolExecutor
    with pool_cls(max_workers=n_workers) as pool:
        futures = [pool.submit(_block_task, blk, b, pair_name, mode,
                               kernel)
                   for blk in blocks]
        results = [f.result() for f in futures]
    return stack_rows(results)


def _registered_name(op_pair: OpPair) -> str:
    """The registry name for an op-pair (workers re-resolve by name).

    Thin wrapper over :func:`repro.values.shipping.registered_name` that
    keeps this module's error type.
    """
    try:
        return registered_name(op_pair)
    except SemiringError as exc:
        raise MatmulError(str(exc)) from None

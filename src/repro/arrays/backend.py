"""Pluggable storage backends for :class:`AssociativeArray`.

The paper's semiring-array abstraction is independent of its storage
(GraphBLAS makes the same separation), and the two needs pull in
opposite directions:

* arbitrary value sets — sets, strings, the exotic non-associative
  algebras — need a representation that holds Python objects verbatim;
* the hot path ``A = Eoutᵀ ⊕.⊗ Ein`` and everything downstream of it
  (element-wise ⊕, reductions, the shard ⊕-merge tree) want a compiled
  sparse representation that **persists across operations** instead of
  being rebuilt from a dict and thrown away per call.

Hence two backends behind one tiny protocol:

:class:`DictBackend`
    Today's semantics verbatim: a ``{(row, col): value}`` dict of Python
    objects.  Works for every value set.  ``pinned=True`` is the
    escape hatch — a pinned dict backend refuses promotion to the
    numeric representation, so every operation takes the generic path.

:class:`NumericBackend`
    Columnar COO — ``rows``/``cols`` int64 position arrays plus a
    float64 ``vals`` array, lex-sorted by (row, col) — with lazily built
    and cached CSR/CSC views.  Arrays are immutable by convention, so
    the cached views stay valid for the array's lifetime and chained
    operations (correlation of correlations, merge trees) never pay the
    dict→CSR conversion again.  The dict view is itself materialised
    lazily, so an array that lives its whole life inside vectorised
    kernels never builds a Python dict at all.

Backend choice is automatic: arrays are born dict-backed, vectorised
fast paths promote to (and produce) numeric backends when the values
are plain numbers and the operation has a ufunc form, and everything
falls back to the dict path otherwise.  ``AssociativeArray(...,
backend=...)`` / :meth:`AssociativeArray.with_backend` override the
automatism in either direction.

Also home to the shared vectorised primitives the fast paths are built
from: coordinate-code union/apply (element-wise ops, ⊕-merge) and
key-position remapping (re-embedding, selection).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

__all__ = [
    "BACKEND_KINDS",
    "VECTORIZE_MIN_NNZ",
    "DictBackend",
    "NumericBackend",
    "is_number",
    "float64_exact",
    "usable_numeric_zero",
    "dict_to_numeric",
    "embed_lookup",
    "union_apply",
]

#: Accepted values for the ``backend=`` escape hatch.
BACKEND_KINDS = ("auto", "dict", "numeric")

#: Below this combined nnz the fast paths keep dict-backed operands on
#: the generic implementations: conversion overhead dominates, and the
#: generic path preserves exact Python value types (int stays int) for
#: the small paper-figure arrays.  Operands *already* numeric-backed
#: skip the bailout — their conversion is paid.
VECTORIZE_MIN_NNZ = 256


def is_number(v: Any) -> bool:
    """Plain int/float (bools excluded — they are their own algebra)."""
    return isinstance(v, (int, float)) and not isinstance(v, bool)


#: Largest integer magnitude float64 represents exactly (2⁵³).
_FLOAT64_EXACT_INT = 2 ** 53

#: The value types the bulk promotion path accepts without a per-value
#: sweep (bool is deliberately absent — it subclasses int but is its
#: own algebra).
_PLAIN_NUMBER_TYPES = frozenset((int, float))


def float64_exact(v: Any) -> bool:
    """Whether ``v`` survives the float64 cast without losing exactness.

    Integers beyond 2⁵³ don't; arrays holding them stay on the dict
    backend, where the generic paths keep arbitrary-precision ints.
    """
    if isinstance(v, int):
        return -_FLOAT64_EXACT_INT <= v <= _FLOAT64_EXACT_INT
    return True


def usable_numeric_zero(zero: Any) -> bool:
    """Whether ``zero`` can drive float64 fast paths.

    NaN is excluded: ``NaN != NaN`` would break the vectorised
    drop-entries-equal-to-zero filters, which the dict path handles
    through NaN-aware equality.
    """
    return is_number(zero) and not (isinstance(zero, float)
                                    and math.isnan(zero))


class DictBackend:
    """Python-dict storage — any value set, generic evaluation."""

    kind = "dict"
    __slots__ = ("data", "pinned")

    def __init__(self, data: Dict[Tuple[Any, Any], Any], *,
                 pinned: bool = False) -> None:
        self.data = data
        self.pinned = pinned

    @property
    def nnz(self) -> int:
        return len(self.data)

    def __getstate__(self):
        return (self.data, self.pinned)

    def __setstate__(self, state) -> None:
        self.data, self.pinned = state


class NumericBackend:
    """Columnar (row-idx, col-idx, values) storage with cached CSR/CSC.

    Invariants: ``rows``/``cols`` are int64 positions into the owning
    array's key sets, ``vals`` is float64, entries are unique and
    lex-sorted by (row, col), and no stored value equals the owning
    array's zero.  Constructors enforce sortedness; zero-filtering is
    the caller's job (:meth:`AssociativeArray._from_numeric` does it).
    """

    kind = "numeric"
    __slots__ = ("rows", "cols", "vals", "shape", "_csr", "_csc", "_dict")

    def __init__(self, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
                 shape: Tuple[int, int], *, presorted: bool = False) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not presorted:
            order = np.lexsort((cols, rows))
            rows, cols, vals = rows[order], cols[order], vals[order]
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.shape = (int(shape[0]), int(shape[1]))
        self._csr: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._csc: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray,
                                  np.ndarray]] = None
        self._dict: Optional[Dict[Tuple[Any, Any], Any]] = None

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_csr(cls, data: np.ndarray, indices: np.ndarray,
                 indptr: np.ndarray, shape: Tuple[int, int]) -> "NumericBackend":
        """Adopt CSR arrays (indices sorted within each row) directly.

        The CSR view is seeded, so a kernel that produced CSR output
        hands the next kernel a ready-to-use compiled form for free.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        rows = np.repeat(np.arange(shape[0], dtype=np.int64),
                         np.diff(indptr))
        be = cls(rows, np.asarray(indices, dtype=np.int64),
                 np.asarray(data, dtype=np.float64), shape, presorted=True)
        be._csr = (be.vals, be.cols, indptr)
        return be

    # -- basic properties -----------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    # -- compiled views (cached; arrays are immutable by convention) ----------
    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(data, indices, indptr)`` — float64/int64 CSR in key order."""
        if self._csr is None:
            counts = np.bincount(self.rows, minlength=self.shape[0])
            indptr = np.empty(self.shape[0] + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(counts, out=indptr[1:])
            self._csr = (self.vals, self.cols, indptr)
        return self._csr

    def csc(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(data, row_indices, indptr, perm)`` — the CSC view.

        ``perm`` is the permutation from (row, col) order into
        (col, row) order; it doubles as the transpose permutation.
        """
        if self._csc is None:
            perm = np.lexsort((self.rows, self.cols))
            counts = np.bincount(self.cols, minlength=self.shape[1])
            indptr = np.empty(self.shape[1] + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(counts, out=indptr[1:])
            self._csc = (self.vals[perm], self.rows[perm], indptr, perm)
        return self._csc

    def to_dict(self, row_keys: Tuple[Any, ...],
                col_keys: Tuple[Any, ...]) -> Dict[Tuple[Any, Any], Any]:
        """Materialise (and cache) the ``{(row, col): value}`` view."""
        if self._dict is None:
            items: Dict[Tuple[Any, Any], Any] = {}
            for i, j, v in zip(self.rows.tolist(), self.cols.tolist(),
                               self.vals.tolist()):
                items[(row_keys[i], col_keys[j])] = v
            self._dict = items
        return self._dict

    # -- structural transforms ------------------------------------------------
    def transposed(self) -> "NumericBackend":
        """The transpose backend; this backend's CSC becomes its CSR."""
        data, row_indices, indptr, perm = self.csc()
        be = NumericBackend(self.cols[perm], row_indices, data,
                            (self.shape[1], self.shape[0]), presorted=True)
        be._csr = (data, row_indices, indptr)
        return be

    def remapped(self, row_lookup: np.ndarray, col_lookup: np.ndarray,
                 shape: Tuple[int, int]) -> "NumericBackend":
        """Re-embed positions through monotone lookup arrays.

        Monotonicity (superset embeddings of sorted key sets are
        order-preserving) means the lex order survives untouched.
        """
        return NumericBackend(row_lookup[self.rows], col_lookup[self.cols],
                              self.vals, shape, presorted=True)

    # -- pickling (drop the derived views; they rebuild on demand) ------------
    def __getstate__(self):
        return (self.rows, self.cols, self.vals, self.shape)

    def __setstate__(self, state) -> None:
        self.rows, self.cols, self.vals, self.shape = state
        self._csr = None
        self._csc = None
        self._dict = None


def dict_to_numeric(
    data: Dict[Tuple[Any, Any], Any],
    row_positions: Dict[Any, int],
    col_positions: Dict[Any, int],
    shape: Tuple[int, int],
) -> Optional[NumericBackend]:
    """Convert dict storage to columnar form; ``None`` if any value is
    not a plain number — or is an int too large for float64 to hold
    exactly (the caller falls back to the dict path either way).

    Promotion sits on the critical path of every cold vectorised
    operation (the expression engine's fused kernels promote freshly
    ingested arrays before their first product), so the conversion is
    staged for bulk speed: one C-level pass per column instead of
    per-entry scalar stores, with the plain-number type gate as a
    single predicate sweep and the 2⁵³ exactness audit only for the
    (rare) entries whose magnitude makes it relevant.
    """
    nnz = len(data)
    if nnz == 0:
        return NumericBackend(np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.int64),
                              np.empty(0, dtype=np.float64), shape)
    values = list(data.values())
    # Type gate: one C-level pass over the concrete types.  Exactly
    # {int, float} passes outright; anything else (bools — their own
    # algebra —, numpy scalars, Decimals, exotica) drops to the precise
    # per-value predicate, which keeps today's accept/reject semantics
    # without paying interpreter cost on the overwhelmingly common case.
    if not set(map(type, values)) <= _PLAIN_NUMBER_TYPES:
        if not all(is_number(v) for v in values):
            return None
    try:
        vals = np.array(values, dtype=np.float64)
    except (TypeError, ValueError, OverflowError):
        return None
    # Exactness audit only where magnitude makes it relevant: ints at
    # or beyond 2⁵³ may have rounded in the cast above.
    with np.errstate(invalid="ignore"):
        big = np.abs(vals) >= float(_FLOAT64_EXACT_INT)
    if bool(big.any()):
        for i in np.flatnonzero(big).tolist():
            if not float64_exact(values[i]):
                return None
    rows = np.array([row_positions[r] for r, _c in data], dtype=np.int64)
    cols = np.array([col_positions[c] for _r, c in data], dtype=np.int64)
    return NumericBackend(rows, cols, vals, shape)


def embed_lookup(old_keys: Iterable[Any],
                 new_positions: Dict[Any, int],
                 count: int) -> np.ndarray:
    """int64 array mapping old key positions into a new key set, ``-1``
    where the new set lacks the key (callers decide whether a stored
    entry landing on ``-1`` is an error or a drop)."""
    out = np.full(count, -1, dtype=np.int64)
    for i, k in enumerate(old_keys):
        p = new_positions.get(k)
        if p is not None:
            out[i] = p
    return out


def _codes(be: NumericBackend, ncols: int) -> np.ndarray:
    """Flat (row, col) coordinate codes — sorted ascending because the
    backend is lex-sorted."""
    return be.rows * np.int64(ncols) + be.cols


def _gather(codes: np.ndarray, vals: np.ndarray, union: np.ndarray,
            fill: float) -> np.ndarray:
    """Values of ``codes``→``vals`` at every union coordinate, ``fill``
    where absent."""
    out = np.full(union.shape, fill, dtype=np.float64)
    if codes.size:
        idx = np.minimum(np.searchsorted(codes, union), codes.size - 1)
        hit = codes[idx] == union
        out[hit] = vals[idx[hit]]
    return out


def union_apply(
    a: NumericBackend,
    b: NumericBackend,
    ufunc: np.ufunc,
    a_zero: float,
    b_zero: float,
    result_zero: float,
    shape: Tuple[int, int],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``ufunc`` over the union pattern of two aligned backends.

    The vectorised form of union-pattern element-wise evaluation:
    unstored entries read as each operand's zero, the ufunc is applied
    at every union coordinate (so non-identity behaviour at the zeros —
    e.g. ⊗ with an annihilator — is honoured exactly as the generic
    path does), and results equal to ``result_zero`` are dropped.
    Returns filtered, lex-sorted ``(rows, cols, vals)``.
    """
    ncols = shape[1]
    ca = _codes(a, ncols)
    cb = _codes(b, ncols)
    union = np.union1d(ca, cb)
    if union.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=np.float64)
    out = ufunc(_gather(ca, a.vals, union, a_zero),
                _gather(cb, b.vals, union, b_zero))
    out = np.asarray(out, dtype=np.float64)
    keep = out != result_zero
    union, out = union[keep], out[keep]
    return union // ncols, union % ncols, out

"""Kronecker products of associative arrays over arbitrary ``⊗``.

The paper's lineage runs through Kronecker products of graphs
([Weischel 1962], [Brualdi 1967] in its bibliography), and R-MAT/Graph500
generators — our benchmark workloads — are stochastic Kronecker powers.
This module provides the deterministic counterpart:

``kron(A, B, mul)`` is the associative array on *paired* key sets

    ``C((ra, rb), (ca, cb)) = A(ra, ca) ⊗ B(rb, cb)``

with keys rendered as ``"ra⊗rb"`` strings (keeping key sets totally
ordered and printable).  When ``⊗`` has no zero divisors and an
annihilating zero — criteria (b) and (c)! — the nonzero pattern of the
product is exactly the Cartesian pattern product, which is what makes
``kron`` of adjacency arrays the adjacency array of the Kronecker product
graph; :func:`kronecker_graph` builds that graph directly so the
round-trip is testable.

Numeric-backed operands take a vectorised path: the product's COO
coordinates are gathered with one repeat/tile pass over the operands'
columnar storage and the values with one ufunc call, so the operands'
compiled form is *adopted* rather than round-tripped through Python
dicts (and the result arrives numeric-backed for the next operation).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import VECTORIZE_MIN_NNZ, usable_numeric_zero
from repro.arrays.keys import KeySet
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.values.operations import BinaryOp

__all__ = ["kron", "kron_power", "kronecker_graph", "pair_key"]

#: Separator used in paired key strings.
PAIR_SEP = "⊗"


def pair_key(a: Any, b: Any) -> str:
    """Render a key pair as a single totally ordered string key."""
    return f"{a}{PAIR_SEP}{b}"


def _pair_lookup(
    a_keys: KeySet,
    b_keys: KeySet,
    paired: KeySet,
    used_a: np.ndarray,
    used_b: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Paired-key positions for the coordinate pairs that can occur.

    Returns ``(table, compact_a, compact_b)`` where
    ``table[compact_a[i], compact_b[j]]`` is the position of
    ``pair_key(a_keys[i], b_keys[j])`` in the sorted paired key set —
    built only over the *used* operand positions, so the work is
    ``O(|used_a|·|used_b|)`` (never more than the product nnz), not a
    dense sweep of the full key-set cross product.

    Returns ``None`` when pairing is not injective (a separator
    collision made two pairs render identically) — the generic path
    then keeps today's last-wins semantics.
    """
    if len(paired) != len(a_keys) * len(b_keys):
        return None
    positions = paired.position_map()
    ka, kb = a_keys.keys(), b_keys.keys()
    compact_a = np.full(len(a_keys), -1, dtype=np.int64)
    compact_a[used_a] = np.arange(used_a.size, dtype=np.int64)
    compact_b = np.full(len(b_keys), -1, dtype=np.int64)
    compact_b[used_b] = np.arange(used_b.size, dtype=np.int64)
    table = np.empty((used_a.size, used_b.size), dtype=np.int64)
    for i, ia in enumerate(used_a.tolist()):
        key_a = ka[ia]
        for j, ib in enumerate(used_b.tolist()):
            table[i, j] = positions[pair_key(key_a, kb[ib])]
    return table, compact_a, compact_b


def _kron_vectorized(
    a: AssociativeArray,
    b: AssociativeArray,
    mul: BinaryOp,
    result_zero: Any,
    rows: KeySet,
    cols: KeySet,
) -> Optional[AssociativeArray]:
    """Columnar evaluation; ``None`` when the fast path does not apply.

    Applies under the shared fast-path policy (ufunc ``⊗``, plain
    numeric zero, operands native-numeric or large enough to be worth
    promoting).  Lex order of the paired keys is *not* the product
    order of the operand positions (string sort), so coordinates are
    remapped through the paired-position table and re-sorted.
    """
    if mul.ufunc is None or not usable_numeric_zero(result_zero):
        return None
    native = a.backend == "numeric" or b.backend == "numeric"
    if not native and a.nnz + b.nnz < VECTORIZE_MIN_NNZ:
        return None
    na = a.numeric_backend()
    if na is None:
        return None
    nb = b.numeric_backend()
    if nb is None:
        return None
    if na.nnz == 0 or nb.nnz == 0:
        return AssociativeArray.empty(rows, cols, zero=result_zero)
    row_lookup = _pair_lookup(a.row_keys, b.row_keys, rows,
                              np.unique(na.rows), np.unique(nb.rows))
    col_lookup = _pair_lookup(a.col_keys, b.col_keys, cols,
                              np.unique(na.cols), np.unique(nb.cols))
    if row_lookup is None or col_lookup is None:
        return None
    row_table, row_ca, row_cb = row_lookup
    col_table, col_ca, col_cb = col_lookup
    # Every (a-entry, b-entry) pair, a-major — the generic iteration
    # order — via one repeat/tile gather.
    ar = np.repeat(na.rows, nb.nnz)
    ac = np.repeat(na.cols, nb.nnz)
    br = np.tile(nb.rows, na.nnz)
    bc = np.tile(nb.cols, na.nnz)
    vals = mul.ufunc(np.repeat(na.vals, nb.nnz), np.tile(nb.vals, na.nnz))
    return AssociativeArray._from_numeric(
        row_table[row_ca[ar], row_cb[br]],
        col_table[col_ca[ac], col_cb[bc]], vals,
        row_keys=rows, col_keys=cols, zero=result_zero)


def kron(
    a: AssociativeArray,
    b: AssociativeArray,
    mul: BinaryOp,
    *,
    zero: Any = None,
) -> AssociativeArray:
    """Kronecker product over ``mul`` with string-paired keys.

    The result's zero defaults to ``a.zero``.  Entries whose product
    equals the zero are dropped (with zero divisors present, the pattern
    can be strictly smaller than the Cartesian product — the same
    criterion-(b) effect Theorem II.1 regulates).
    """
    result_zero = a.zero if zero is None else zero
    rows = KeySet([pair_key(ra, rb)
                   for ra in a.row_keys for rb in b.row_keys])
    cols = KeySet([pair_key(ca, cb)
                   for ca in a.col_keys for cb in b.col_keys])
    fast = _kron_vectorized(a, b, mul, result_zero, rows, cols)
    if fast is not None:
        return fast
    data = {}
    b_items = list(b.to_dict().items())
    for (ra, ca), va in a.to_dict().items():
        for (rb, cb), vb in b_items:
            v = mul(va, vb)
            if v == result_zero:
                continue
            data[(pair_key(ra, rb), pair_key(ca, cb))] = v
    return AssociativeArray(data, row_keys=rows, col_keys=cols,
                            zero=result_zero)


def kron_power(
    a: AssociativeArray,
    exponent: int,
    mul: BinaryOp,
) -> AssociativeArray:
    """``a ⊗ a ⊗ ... ⊗ a`` (``exponent`` factors, left-associated).

    ``exponent`` must be ≥ 1.  Kronecker powers of a small initiator are
    the deterministic skeleton of R-MAT generators.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    out = a
    for _ in range(exponent - 1):
        out = kron(out, a, mul)
    return out


def kronecker_graph(
    g: EdgeKeyedDigraph,
    h: EdgeKeyedDigraph,
) -> EdgeKeyedDigraph:
    """The Kronecker (tensor/categorical) product graph ``G ⊗ H``.

    One edge per edge pair: ``(kg, kh) : (sg, sh) → (tg, th)``.  The
    classical fact ([Weischel 1962]) that the adjacency matrix of
    ``G ⊗ H`` is the Kronecker product of the adjacency matrices becomes,
    here, a property test relating :func:`kron` to this construction.
    """
    out = EdgeKeyedDigraph()
    for kg, sg, tg in g.edges():
        for kh, sh, th in h.edges():
            out.add_edge(pair_key(kg, kh), pair_key(sg, sh),
                         pair_key(tg, th))
    return out

"""Kronecker products of associative arrays over arbitrary ``⊗``.

The paper's lineage runs through Kronecker products of graphs
([Weischel 1962], [Brualdi 1967] in its bibliography), and R-MAT/Graph500
generators — our benchmark workloads — are stochastic Kronecker powers.
This module provides the deterministic counterpart:

``kron(A, B, mul)`` is the associative array on *paired* key sets

    ``C((ra, rb), (ca, cb)) = A(ra, ca) ⊗ B(rb, cb)``

with keys rendered as ``"ra⊗rb"`` strings (keeping key sets totally
ordered and printable).  When ``⊗`` has no zero divisors and an
annihilating zero — criteria (b) and (c)! — the nonzero pattern of the
product is exactly the Cartesian pattern product, which is what makes
``kron`` of adjacency arrays the adjacency array of the Kronecker product
graph; :func:`kronecker_graph` builds that graph directly so the
round-trip is testable.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeySet
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.values.operations import BinaryOp

__all__ = ["kron", "kron_power", "kronecker_graph", "pair_key"]

#: Separator used in paired key strings.
PAIR_SEP = "⊗"


def pair_key(a: Any, b: Any) -> str:
    """Render a key pair as a single totally ordered string key."""
    return f"{a}{PAIR_SEP}{b}"


def kron(
    a: AssociativeArray,
    b: AssociativeArray,
    mul: BinaryOp,
    *,
    zero: Any = None,
) -> AssociativeArray:
    """Kronecker product over ``mul`` with string-paired keys.

    The result's zero defaults to ``a.zero``.  Entries whose product
    equals the zero are dropped (with zero divisors present, the pattern
    can be strictly smaller than the Cartesian product — the same
    criterion-(b) effect Theorem II.1 regulates).
    """
    result_zero = a.zero if zero is None else zero
    rows = KeySet([pair_key(ra, rb)
                   for ra in a.row_keys for rb in b.row_keys])
    cols = KeySet([pair_key(ca, cb)
                   for ca in a.col_keys for cb in b.col_keys])
    data = {}
    b_items = list(b.to_dict().items())
    for (ra, ca), va in a.to_dict().items():
        for (rb, cb), vb in b_items:
            v = mul(va, vb)
            if v == result_zero:
                continue
            data[(pair_key(ra, rb), pair_key(ca, cb))] = v
    return AssociativeArray(data, row_keys=rows, col_keys=cols,
                            zero=result_zero)


def kron_power(
    a: AssociativeArray,
    exponent: int,
    mul: BinaryOp,
) -> AssociativeArray:
    """``a ⊗ a ⊗ ... ⊗ a`` (``exponent`` factors, left-associated).

    ``exponent`` must be ≥ 1.  Kronecker powers of a small initiator are
    the deterministic skeleton of R-MAT generators.
    """
    if exponent < 1:
        raise ValueError("exponent must be >= 1")
    out = a
    for _ in range(exponent - 1):
        out = kron(out, a, mul)
    return out


def kronecker_graph(
    g: EdgeKeyedDigraph,
    h: EdgeKeyedDigraph,
) -> EdgeKeyedDigraph:
    """The Kronecker (tensor/categorical) product graph ``G ⊗ H``.

    One edge per edge pair: ``(kg, kh) : (sg, sh) → (tg, th)``.  The
    classical fact ([Weischel 1962]) that the adjacency matrix of
    ``G ⊗ H`` is the Kronecker product of the adjacency matrices becomes,
    here, a property test relating :func:`kron` to this construction.
    """
    out = EdgeKeyedDigraph()
    for kg, sg, tg in g.edges():
        for kh, sh, th in h.edges():
            out.add_edge(pair_key(kg, kh), pair_key(sg, sh),
                         pair_key(tg, th))
    return out

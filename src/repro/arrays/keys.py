"""Finite totally ordered key sets.

Definition I.1 requires the key sets ``K1``, ``K2`` of an associative array
(and the edge set ``K`` of a graph) to be finite and totally ordered.
:class:`KeySet` is an immutable sorted sequence of mutually comparable keys
with O(1) membership, O(log n) range queries, and the D4M-style string
selectors the paper uses in Figure 1:

``E(:, 'Genre|A : Genre|Z')``
    all columns lexicographically between the endpoints (inclusive);

``'Genre|*'``
    prefix selection;

``':'``
    everything.

Fold order in array multiplication is defined by the order of the inner
key set, so :class:`KeySet` order is load-bearing, not cosmetic.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["KeySet", "KeyError_"]


class KeyError_(ValueError):
    """Raised for malformed selectors or keys missing from a key set.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


Selector = Union[str, slice, Sequence[Any], "KeySet"]


class KeySet:
    """An immutable, sorted, duplicate-free sequence of comparable keys.

    Parameters
    ----------
    keys:
        Any iterable of mutually comparable keys (all strings, or all
        numbers).  Duplicates are removed; order is ascending.
    presorted:
        Internal fast path: trust that ``keys`` is already a sorted,
        duplicate-free list.
    """

    __slots__ = ("_keys", "_index", "_hash")

    def __init__(self, keys: Iterable[Any] = (), *, presorted: bool = False) -> None:
        if presorted:
            ks = list(keys)
        else:
            try:
                ks = sorted(set(keys))
            except TypeError as exc:
                raise KeyError_(
                    "keys must be mutually comparable (totally ordered): "
                    f"{exc}") from None
        self._keys: Tuple[Any, ...] = tuple(ks)
        self._index = {k: i for i, k in enumerate(self._keys)}
        if len(self._index) != len(self._keys):
            raise KeyError_("duplicate keys after sorting (unhashable mix?)")
        self._hash: Optional[int] = None

    # -- basic container protocol -------------------------------------------
    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._keys)

    def __contains__(self, key: Any) -> bool:
        try:
            return key in self._index
        except TypeError:
            return False

    def __getitem__(self, i: Union[int, slice]) -> Any:
        if isinstance(i, slice):
            return KeySet(self._keys[i], presorted=True)
        return self._keys[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, KeySet):
            return self._keys == other._keys
        return NotImplemented

    def __hash__(self) -> int:
        # Memoised: key sets can hold 10⁵+ keys and serve as parts of
        # expression-DAG signatures, which hash them repeatedly.
        h = self._hash
        if h is None:
            h = hash(self._keys)
            self._hash = h
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if len(self) <= 6:
            inner = ", ".join(map(repr, self._keys))
        else:
            head = ", ".join(map(repr, self._keys[:3]))
            tail = ", ".join(map(repr, self._keys[-2:]))
            inner = f"{head}, ... , {tail}"
        return f"KeySet([{inner}], n={len(self)})"

    # -- index machinery -----------------------------------------------------
    def index(self, key: Any) -> int:
        """Position of ``key`` in the order; raises if absent."""
        try:
            return self._index[key]
        except (KeyError, TypeError):
            raise KeyError_(f"key {key!r} not in key set") from None

    def keys(self) -> Tuple[Any, ...]:
        """The keys as a tuple, in ascending order."""
        return self._keys

    # -- set algebra (results stay sorted) -----------------------------------
    def union(self, other: Union["KeySet", Iterable[Any]]) -> "KeySet":
        """Sorted union with another key collection."""
        other_keys = other._keys if isinstance(other, KeySet) else tuple(other)
        return KeySet(set(self._keys) | set(other_keys))

    def intersection(self, other: Union["KeySet", Iterable[Any]]) -> "KeySet":
        """Sorted intersection with another key collection."""
        other_set = set(other._keys if isinstance(other, KeySet) else other)
        return KeySet([k for k in self._keys if k in other_set],
                      presorted=True)

    def difference(self, other: Union["KeySet", Iterable[Any]]) -> "KeySet":
        """Keys of self not in other, sorted."""
        other_set = set(other._keys if isinstance(other, KeySet) else other)
        return KeySet([k for k in self._keys if k not in other_set],
                      presorted=True)

    # -- range and selector queries ------------------------------------------
    def between(self, lo: Any, hi: Any) -> "KeySet":
        """Keys ``k`` with ``lo <= k <= hi`` (endpoints need not be members)."""
        i = bisect.bisect_left(self._keys, lo)
        j = bisect.bisect_right(self._keys, hi)
        return KeySet(self._keys[i:j], presorted=True)

    def starting_with(self, prefix: str) -> "KeySet":
        """String keys beginning with ``prefix``."""
        matching = [k for k in self._keys
                    if isinstance(k, str) and k.startswith(prefix)]
        return KeySet(matching, presorted=True)

    def select(self, selector: Selector) -> "KeySet":
        """Resolve a D4M-style selector against this key set.

        Accepted selector forms:

        * ``':'`` — all keys;
        * ``'lo : hi'`` — inclusive lexicographic range (whitespace around
          ``' : '`` required, mirroring the paper's
          ``'Genre|A : Genre|Z'``);
        * ``'prefix*'`` — prefix match;
        * any other string — the single key (must be present);
        * a ``slice`` of keys (``A['a':'k']`` style endpoints, inclusive);
        * a sequence of keys — subset in this key set's order (all must be
          present);
        * a :class:`KeySet` — intersected in order.
        """
        if isinstance(selector, KeySet):
            return self.intersection(selector)
        if isinstance(selector, slice):
            if selector.step is not None:
                raise KeyError_("stepped key slices are not supported")
            if len(self) == 0:
                return KeySet()
            lo = self._keys[0] if selector.start is None else selector.start
            hi = self._keys[-1] if selector.stop is None else selector.stop
            return self.between(lo, hi)
        if isinstance(selector, str):
            text = selector
            if text.strip() == ":":
                return self
            if " : " in text:
                lo, _, hi = text.partition(" : ")
                lo, hi = lo.strip(), hi.strip()
                if not lo or not hi:
                    raise KeyError_(f"malformed range selector {selector!r}")
                return self.between(lo, hi)
            if text.endswith("*") and len(text) > 1:
                return self.starting_with(text[:-1])
            if text in self._index:
                return KeySet([text], presorted=True)
            raise KeyError_(f"key {text!r} not in key set")
        if isinstance(selector, Sequence):
            missing = [k for k in selector if k not in self._index]
            if missing:
                raise KeyError_(f"keys not in key set: {missing!r}")
            return KeySet(selector)
        raise KeyError_(f"unsupported selector {selector!r}")

    # -- misc -----------------------------------------------------------------
    def position_map(self) -> dict:
        """Mapping key → index, as a read-only view.

        This is the key set's own index (not a copy — callers must not
        mutate it, the same contract as :attr:`AssociativeArray._data`).
        It sits on the promotion hot path: the vectorised kernels remap
        every stored coordinate through it, and copying a large key
        set's index per promotion measurably dominated cold-start
        profiles.
        """
        return self._index

    @staticmethod
    def coerce(value: Union["KeySet", Iterable[Any], None]) -> "KeySet":
        """Turn ``value`` into a KeySet (identity for KeySets, empty for None)."""
        if value is None:
            return KeySet()
        if isinstance(value, KeySet):
            return value
        return KeySet(value)

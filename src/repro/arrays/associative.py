"""Associative arrays (Definition I.1) with transpose and selection.

An :class:`AssociativeArray` is a map ``A : K1 × K2 → V`` over finite
totally ordered key sets, stored sparsely: only entries different from the
array's *zero* element are kept.  The zero defaults to ``0`` but can be any
value (``−∞`` for max-plus arrays, ``∅`` for set-valued arrays, ``''`` for
string lattices) — the paper's Figure 3 note that the zero may "be it 0,
−∞, or ∞" is first-class here.

Design notes
------------
* Key sets are part of the array's identity: an array can have empty rows
  and columns (keys with no stored entries).  This matters because
  Definition I.3's ``⊕``-sum ranges over the whole inner key set, and
  because incidence arrays of a graph share the full edge set ``K`` even
  when some edges touch no vertex of one side.
* Entries equal to the zero are never stored; assigning the zero deletes.
* Instances are immutable by convention: all operations return new arrays.
  (Storage is a plain dict; we do not defensively copy on read.)
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.arrays.keys import KeyError_, KeySet, Selector

__all__ = ["AssociativeArray"]


def _values_equal(a: Any, b: Any) -> bool:
    """Equality robust to NaN and to int/float mixing."""
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    try:
        return bool(a == b)
    except Exception:  # pragma: no cover - defensive
        return a is b


class AssociativeArray:
    """A sparse map ``K1 × K2 → V`` with a designated zero element.

    Parameters
    ----------
    data:
        Mapping ``(row_key, col_key) → value``.  Entries whose value equals
        ``zero`` are dropped.
    row_keys, col_keys:
        Key sets (anything :meth:`KeySet.coerce` accepts).  When omitted,
        they are derived from ``data``; passing them explicitly allows
        empty rows/columns, which Definition I.3 semantics need.
    zero:
        The array's zero element (default ``0``).
    """

    __slots__ = ("_data", "_row_keys", "_col_keys", "_zero", "_cache")

    def __init__(
        self,
        data: Optional[Mapping[Tuple[Any, Any], Any]] = None,
        *,
        row_keys: Union[KeySet, Iterable[Any], None] = None,
        col_keys: Union[KeySet, Iterable[Any], None] = None,
        zero: Any = 0,
    ) -> None:
        entries = dict(data or {})
        if row_keys is None:
            row_keys = {r for (r, _c) in entries}
        if col_keys is None:
            col_keys = {c for (_r, c) in entries}
        self._row_keys = KeySet.coerce(row_keys)
        self._col_keys = KeySet.coerce(col_keys)
        self._zero = zero
        clean: Dict[Tuple[Any, Any], Any] = {}
        for (r, c), v in entries.items():
            if r not in self._row_keys:
                raise KeyError_(f"row key {r!r} not in row key set")
            if c not in self._col_keys:
                raise KeyError_(f"column key {c!r} not in column key set")
            if not _values_equal(v, zero):
                clean[(r, c)] = v
        self._data = clean
        # Derived-representation memo (e.g. CSR form for the vectorised
        # kernels).  Arrays are immutable by convention, so caching is
        # safe; the cache never participates in equality.
        self._cache: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        row_keys: Union[KeySet, Iterable[Any]],
        col_keys: Union[KeySet, Iterable[Any]],
        *,
        zero: Any = 0,
    ) -> "AssociativeArray":
        """All-zero array over the given key sets."""
        return cls({}, row_keys=row_keys, col_keys=col_keys, zero=zero)

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Tuple[Any, Any, Any]],
        *,
        row_keys: Union[KeySet, Iterable[Any], None] = None,
        col_keys: Union[KeySet, Iterable[Any], None] = None,
        zero: Any = 0,
        combine: Optional[Callable[[Any, Any], Any]] = None,
    ) -> "AssociativeArray":
        """Build from ``(row, col, value)`` triples.

        Duplicate coordinates raise unless ``combine`` is given, in which
        case values are combined left-to-right in input order (D4M's
        assoc-with-collision-function construction).
        """
        data: Dict[Tuple[Any, Any], Any] = {}
        for r, c, v in triples:
            key = (r, c)
            if key in data:
                if combine is None:
                    raise KeyError_(
                        f"duplicate coordinate {key!r}; pass combine= to "
                        "merge values")
                data[key] = combine(data[key], v)
            else:
                data[key] = v
        return cls(data, row_keys=row_keys, col_keys=col_keys, zero=zero)

    @classmethod
    def from_dense(
        cls,
        rows: Sequence[Sequence[Any]],
        row_keys: Union[KeySet, Iterable[Any]],
        col_keys: Union[KeySet, Iterable[Any]],
        *,
        zero: Any = 0,
    ) -> "AssociativeArray":
        """Build from a dense row-major list of lists.

        ``rows[i][j]`` corresponds to ``(row_keys[i], col_keys[j])`` in
        *sorted* key order.
        """
        rk = KeySet.coerce(row_keys)
        ck = KeySet.coerce(col_keys)
        if len(rows) != len(rk):
            raise KeyError_(f"expected {len(rk)} rows, got {len(rows)}")
        data: Dict[Tuple[Any, Any], Any] = {}
        for i, row in enumerate(rows):
            if len(row) != len(ck):
                raise KeyError_(
                    f"row {i} has {len(row)} entries, expected {len(ck)}")
            for j, v in enumerate(row):
                if not _values_equal(v, zero):
                    data[(rk[i], ck[j])] = v
        return cls(data, row_keys=rk, col_keys=ck, zero=zero)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def row_keys(self) -> KeySet:
        """The row key set ``K1``."""
        return self._row_keys

    @property
    def col_keys(self) -> KeySet:
        """The column key set ``K2``."""
        return self._col_keys

    @property
    def zero(self) -> Any:
        """The array's zero element (unstored value)."""
        return self._zero

    @property
    def shape(self) -> Tuple[int, int]:
        """``(len(K1), len(K2))``."""
        return (len(self._row_keys), len(self._col_keys))

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) entries."""
        return len(self._data)

    def is_zero_value(self, v: Any) -> bool:
        """Whether ``v`` equals this array's zero."""
        return _values_equal(v, self._zero)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, row: Any, col: Any, default: Any = None) -> Any:
        """Value at ``(row, col)``; the zero (or ``default``) if unstored.

        Keys outside the key sets raise :class:`KeyError_`.
        """
        if row not in self._row_keys:
            raise KeyError_(f"row key {row!r} not in row key set")
        if col not in self._col_keys:
            raise KeyError_(f"column key {col!r} not in column key set")
        fallback = self._zero if default is None else default
        return self._data.get((row, col), fallback)

    def __getitem__(self, item: Tuple[Any, Any]) -> Any:
        """``A[r, c]`` → value; ``A[row_sel, col_sel]`` → sub-array.

        Scalar access requires both components to be existing keys; any
        other combination is interpreted as a pair of selectors (string
        ranges, prefixes, ``':'``, lists, slices, KeySets) and yields the
        selected sub-array, mirroring the paper's
        ``E(:, 'Genre|A : Genre|Z')``.
        """
        if not isinstance(item, tuple) or len(item) != 2:
            raise KeyError_("indexing requires a (row, col) pair")
        row_sel, col_sel = item
        scalar_row = not isinstance(row_sel, (slice, KeySet, list, tuple)) \
            and row_sel in self._row_keys
        scalar_col = not isinstance(col_sel, (slice, KeySet, list, tuple)) \
            and col_sel in self._col_keys
        # A string that is literally a key takes priority as scalar access;
        # but a row scalar with a column selector (or vice versa) still
        # produces a sub-array.
        if scalar_row and scalar_col:
            return self._data.get((row_sel, col_sel), self._zero)
        return self.select(row_sel if not scalar_row else [row_sel],
                           col_sel if not scalar_col else [col_sel])

    def select(self, row_selector: Selector, col_selector: Selector) -> "AssociativeArray":
        """Sub-array on the selected keys (selection semantics of Figure 1)."""
        rows = self._row_keys.select(row_selector)
        cols = self._col_keys.select(col_selector)
        row_set, col_set = set(rows), set(cols)
        data = {(r, c): v for (r, c), v in self._data.items()
                if r in row_set and c in col_set}
        return AssociativeArray(data, row_keys=rows, col_keys=cols,
                                zero=self._zero)

    def row(self, row: Any) -> Dict[Any, Any]:
        """Stored entries of one row as ``{col: value}`` (sorted by col)."""
        if row not in self._row_keys:
            raise KeyError_(f"row key {row!r} not in row key set")
        pairs = [(c, v) for (r, c), v in self._data.items() if r == row]
        return dict(sorted(pairs, key=lambda cv: self._col_keys.index(cv[0])))

    def col(self, col: Any) -> Dict[Any, Any]:
        """Stored entries of one column as ``{row: value}`` (sorted by row)."""
        if col not in self._col_keys:
            raise KeyError_(f"column key {col!r} not in column key set")
        pairs = [(r, v) for (r, c), v in self._data.items() if c == col]
        return dict(sorted(pairs, key=lambda rv: self._row_keys.index(rv[0])))

    def entries(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Stored entries as ``(row, col, value)`` in (row, col) key order."""
        ri = self._row_keys.position_map()
        ci = self._col_keys.position_map()
        for (r, c) in sorted(self._data, key=lambda rc: (ri[rc[0]], ci[rc[1]])):
            yield r, c, self._data[(r, c)]

    def triples(self) -> List[Tuple[Any, Any, Any]]:
        """:meth:`entries` as a list."""
        return list(self.entries())

    def nonzero_pattern(self) -> frozenset:
        """The set of stored coordinates — the array's *structure*.

        Definition I.5 characterises adjacency arrays purely through this
        pattern, so pattern equality is the core predicate of the paper.
        """
        return frozenset(self._data)

    def values_list(self) -> List[Any]:
        """Stored values in (row, col) key order."""
        return [v for (_r, _c, v) in self.entries()]

    def rows_nonempty(self) -> KeySet:
        """Row keys that have at least one stored entry."""
        present = {r for (r, _c) in self._data}
        return KeySet([r for r in self._row_keys if r in present],
                      presorted=True)

    def cols_nonempty(self) -> KeySet:
        """Column keys that have at least one stored entry."""
        present = {c for (_r, c) in self._data}
        return KeySet([c for c in self._col_keys if c in present],
                      presorted=True)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "AssociativeArray":
        """Definition I.2: ``Aᵀ(k2, k1) = A(k1, k2)``."""
        data = {(c, r): v for (r, c), v in self._data.items()}
        return AssociativeArray(data, row_keys=self._col_keys,
                                col_keys=self._row_keys, zero=self._zero)

    @property
    def T(self) -> "AssociativeArray":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def with_zero(self, zero: Any) -> "AssociativeArray":
        """Reinterpret the stored nonzeros over a different zero element.

        This is the Figure 3 move: the same incidence array is multiplied
        under op-pairs whose zeros are 0, −∞ or +∞; stored entries are the
        nonzeros in every case.  Stored values equal to the *new* zero
        would silently vanish, so that case raises.
        """
        for (r, c), v in self._data.items():
            if _values_equal(v, zero):
                raise KeyError_(
                    f"stored value at {(r, c)!r} equals the new zero "
                    f"{zero!r}; reinterpretation would drop it")
        return AssociativeArray(self._data, row_keys=self._row_keys,
                                col_keys=self._col_keys, zero=zero)

    def map_values(self, func: Callable[[Any], Any],
                   *, zero: Any = None) -> "AssociativeArray":
        """Apply ``func`` to every stored value (results equal to the zero
        are dropped).  ``zero`` overrides the result array's zero."""
        z = self._zero if zero is None else zero
        data = {rc: func(v) for rc, v in self._data.items()}
        return AssociativeArray(data, row_keys=self._row_keys,
                                col_keys=self._col_keys, zero=z)

    def restrict_values(self, predicate: Callable[[Any], bool]) -> "AssociativeArray":
        """Keep only stored entries whose value satisfies ``predicate``."""
        data = {rc: v for rc, v in self._data.items() if predicate(v)}
        return AssociativeArray(data, row_keys=self._row_keys,
                                col_keys=self._col_keys, zero=self._zero)

    def prune_to_pattern(self) -> "AssociativeArray":
        """Drop empty rows/columns, shrinking the key sets to the pattern."""
        return AssociativeArray(self._data,
                                row_keys=self.rows_nonempty(),
                                col_keys=self.cols_nonempty(),
                                zero=self._zero)

    def with_keys(
        self,
        row_keys: Union[KeySet, Iterable[Any], None] = None,
        col_keys: Union[KeySet, Iterable[Any], None] = None,
    ) -> "AssociativeArray":
        """Re-embed into (super)key sets, e.g. to share an edge set ``K``."""
        rk = self._row_keys if row_keys is None else KeySet.coerce(row_keys)
        ck = self._col_keys if col_keys is None else KeySet.coerce(col_keys)
        return AssociativeArray(self._data, row_keys=rk, col_keys=ck,
                                zero=self._zero)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Strict equality: key sets, zero, and stored entries all match."""
        if not isinstance(other, AssociativeArray):
            return NotImplemented
        if self._row_keys != other._row_keys:
            return False
        if self._col_keys != other._col_keys:
            return False
        if not _values_equal(self._zero, other._zero):
            return False
        if set(self._data) != set(other._data):
            return False
        return all(_values_equal(v, other._data[rc])
                   for rc, v in self._data.items())

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("AssociativeArray is unhashable")

    def same_pattern(self, other: "AssociativeArray") -> bool:
        """Whether both arrays store exactly the same coordinates."""
        return self.nonzero_pattern() == other.nonzero_pattern()

    def allclose(self, other: "AssociativeArray", *,
                 rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
        """Pattern equality plus numeric closeness of stored values."""
        if not self.same_pattern(other):
            return False
        for rc, v in self._data.items():
            w = other._data[rc]
            if isinstance(v, (int, float)) and isinstance(w, (int, float)):
                v_nan = isinstance(v, float) and math.isnan(v)
                w_nan = isinstance(w, float) and math.isnan(w)
                if v_nan or w_nan:
                    if not (v_nan and w_nan):
                        return False
                elif math.isinf(v) or math.isinf(w):
                    if v != w:
                        return False
                elif not math.isclose(v, w, rel_tol=rel_tol, abs_tol=abs_tol):
                    return False
            elif not _values_equal(v, w):
                return False
        return True

    # ------------------------------------------------------------------
    # Algebra (delegating to matmul / elementwise modules)
    # ------------------------------------------------------------------
    def dot(self, other: "AssociativeArray", op_pair,
            *, mode: str = "sparse", kernel: str = "auto") -> "AssociativeArray":
        """Array multiplication ``self ⊕.⊗ other`` (Definition I.3).

        See :func:`repro.arrays.matmul.multiply` for ``mode``/``kernel``.
        """
        from repro.arrays.matmul import multiply
        return multiply(self, other, op_pair, mode=mode, kernel=kernel)

    def add(self, other: "AssociativeArray", op) -> "AssociativeArray":
        """Element-wise ``⊕`` (union-pattern evaluation)."""
        from repro.arrays.elementwise import elementwise_add
        return elementwise_add(self, other, op)

    def multiply_elementwise(self, other: "AssociativeArray", op) -> "AssociativeArray":
        """Element-wise ``⊗`` (union-pattern evaluation)."""
        from repro.arrays.elementwise import elementwise_multiply
        return elementwise_multiply(self, other, op)

    # ------------------------------------------------------------------
    # Conversion / display
    # ------------------------------------------------------------------
    def to_dense(self) -> List[List[Any]]:
        """Dense row-major list of lists, zero-filled."""
        out = [[self._zero] * len(self._col_keys)
               for _ in range(len(self._row_keys))]
        ri = self._row_keys.position_map()
        ci = self._col_keys.position_map()
        for (r, c), v in self._data.items():
            out[ri[r]][ci[c]] = v
        return out

    def to_dict(self) -> Dict[Tuple[Any, Any], Any]:
        """A copy of the stored entries."""
        return dict(self._data)

    def __str__(self) -> str:
        from repro.arrays.printing import format_array
        return format_array(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AssociativeArray(shape={self.shape}, nnz={self.nnz}, "
                f"zero={self._zero!r})")

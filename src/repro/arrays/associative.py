"""Associative arrays (Definition I.1) with transpose and selection.

An :class:`AssociativeArray` is a map ``A : K1 × K2 → V`` over finite
totally ordered key sets, stored sparsely: only entries different from the
array's *zero* element are kept.  The zero defaults to ``0`` but can be any
value (``−∞`` for max-plus arrays, ``∅`` for set-valued arrays, ``''`` for
string lattices) — the paper's Figure 3 note that the zero may "be it 0,
−∞, or ∞" is first-class here.

Design notes
------------
* Key sets are part of the array's identity: an array can have empty rows
  and columns (keys with no stored entries).  This matters because
  Definition I.3's ``⊕``-sum ranges over the whole inner key set, and
  because incidence arrays of a graph share the full edge set ``K`` even
  when some edges touch no vertex of one side.
* Entries equal to the zero are never stored; assigning the zero deletes.
* Instances are immutable by convention: all operations return new arrays.
  (Storage is never defensively copied on read.)
* Storage lives behind a backend (:mod:`repro.arrays.backend`): a plain
  dict for arbitrary value sets, or a persistent columnar/CSR
  representation for plain numbers.  The choice is automatic; the
  ``backend=`` keyword pins it explicitly.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arrays.backend import (
    BACKEND_KINDS,
    VECTORIZE_MIN_NNZ,
    DictBackend,
    NumericBackend,
    dict_to_numeric,
    embed_lookup,
    usable_numeric_zero,
)
from repro.arrays.keys import KeyError_, KeySet, Selector
from repro.values.equality import values_equal as _values_equal

__all__ = ["AssociativeArray"]

#: Cache sentinel: "we tried to promote to numeric storage and could not".
_NO_NUMERIC = object()


class AssociativeArray:
    """A sparse map ``K1 × K2 → V`` with a designated zero element.

    Parameters
    ----------
    data:
        Mapping ``(row_key, col_key) → value``.  Entries whose value equals
        ``zero`` are dropped.
    row_keys, col_keys:
        Key sets (anything :meth:`KeySet.coerce` accepts).  When omitted,
        they are derived from ``data``; passing them explicitly allows
        empty rows/columns, which Definition I.3 semantics need.
    zero:
        The array's zero element (default ``0``).
    backend:
        Storage backend: ``"auto"`` (dict storage, promoted to the
        columnar form on demand by the vectorised fast paths),
        ``"dict"`` (pinned to dict storage — every operation takes the
        generic path), or ``"numeric"`` (eager columnar conversion;
        raises unless the zero and all stored values are plain numbers).
    """

    __slots__ = ("_backend", "_row_keys", "_col_keys", "_zero", "_cache")

    def __init__(
        self,
        data: Optional[Mapping[Tuple[Any, Any], Any]] = None,
        *,
        row_keys: Union[KeySet, Iterable[Any], None] = None,
        col_keys: Union[KeySet, Iterable[Any], None] = None,
        zero: Any = 0,
        backend: str = "auto",
    ) -> None:
        if backend not in BACKEND_KINDS:
            raise KeyError_(
                f"unknown backend {backend!r}; use one of {BACKEND_KINDS}")
        entries = dict(data or {})
        if row_keys is None:
            row_keys = {r for (r, _c) in entries}
        if col_keys is None:
            col_keys = {c for (_r, c) in entries}
        self._row_keys = KeySet.coerce(row_keys)
        self._col_keys = KeySet.coerce(col_keys)
        self._zero = zero
        clean: Dict[Tuple[Any, Any], Any] = {}
        for (r, c), v in entries.items():
            if r not in self._row_keys:
                raise KeyError_(f"row key {r!r} not in row key set")
            if c not in self._col_keys:
                raise KeyError_(f"column key {c!r} not in column key set")
            if not _values_equal(v, zero):
                clean[(r, c)] = v
        # Derived-representation memo (e.g. the promoted numeric
        # backend).  Arrays are immutable by convention, so caching is
        # safe; the cache never participates in equality or pickling.
        self._cache: Dict[str, Any] = {}
        if backend == "numeric":
            self._backend = self._promote_or_raise(clean)
        else:
            self._backend = DictBackend(clean, pinned=(backend == "dict"))

    # ------------------------------------------------------------------
    # Storage backend machinery
    # ------------------------------------------------------------------
    @property
    def _data(self) -> Dict[Tuple[Any, Any], Any]:
        """The ``{(row, col): value}`` view of the stored entries.

        For dict storage this *is* the store (not copied — mutating it
        would violate immutability-by-convention); for numeric storage
        it is a lazily materialised, cached view.
        """
        be = self._backend
        if be.kind == "dict":
            return be.data
        return be.to_dict(self._row_keys.keys(), self._col_keys.keys())

    @property
    def backend(self) -> str:
        """The active storage backend kind: ``"dict"`` or ``"numeric"``."""
        return self._backend.kind

    @property
    def pinned(self) -> bool:
        """Whether this array is pinned to dict storage (``backend="dict"``).

        Pins are inherited by derived arrays (transpose, selection,
        re-embedding, generic operation results over pinned operands),
        so an explicit opt-out of the numeric fast paths holds through
        whole computations — e.g. a ⊕-merge tree over pinned shard
        results stays generic at every level.
        """
        be = self._backend
        return be.kind == "dict" and be.pinned

    @property
    def _derived_backend(self) -> str:
        """Constructor ``backend=`` argument for arrays derived from self."""
        return "dict" if self.pinned else "auto"

    def numeric_backend(self) -> Optional[NumericBackend]:
        """The columnar backend driving the vectorised fast paths.

        Returns the native backend when storage is already numeric;
        otherwise attempts (and caches) a one-time promotion of the dict
        store.  Returns ``None`` — and the callers fall back to the
        generic implementations — when the array is pinned
        (``backend="dict"``), its zero is not a plain non-NaN number, or
        any stored value is not a plain number.
        """
        be = self._backend
        if be.kind == "numeric":
            return be
        if be.pinned:
            return None
        cached = self._cache.get("numeric_backend", _NO_NUMERIC)
        if cached is not _NO_NUMERIC:
            return cached
        nb = None
        if usable_numeric_zero(self._zero):
            nb = dict_to_numeric(be.data, self._row_keys.position_map(),
                                 self._col_keys.position_map(), self.shape)
        self._cache["numeric_backend"] = nb
        return nb

    def _promote_or_raise(self, data: Dict[Tuple[Any, Any], Any]) -> NumericBackend:
        """Columnar conversion of ``data`` for an explicit ``"numeric"``
        request; raises with a precise reason when impossible."""
        if not usable_numeric_zero(self._zero):
            raise KeyError_(
                f"backend='numeric' requires a plain (non-NaN) numeric "
                f"zero, got {self._zero!r}")
        nb = dict_to_numeric(data, self._row_keys.position_map(),
                             self._col_keys.position_map(), self.shape)
        if nb is None:
            raise KeyError_(
                "backend='numeric' requires plain numeric stored values "
                "(ints exactly representable in float64)")
        return nb

    def with_backend(self, backend: str) -> "AssociativeArray":
        """This array under an explicitly chosen storage backend.

        ``"numeric"`` forces columnar storage (raising when the values
        or zero are not plain numbers — the explicit request overrides a
        pin); ``"dict"`` pins to dict storage; ``"auto"`` lifts a pin.
        Returns ``self`` when nothing changes.
        """
        if backend not in BACKEND_KINDS:
            raise KeyError_(
                f"unknown backend {backend!r}; use one of {BACKEND_KINDS}")
        be = self._backend
        if backend == "numeric":
            if be.kind == "numeric":
                return self
            # Reuse a promotion a fast path already computed; a pinned
            # array skips the cache (the pin suppressed it) and the
            # explicit request overrides the pin.
            nb = None if be.pinned else self.numeric_backend()
            if nb is None:
                nb = self._promote_or_raise(be.data)
            return AssociativeArray._adopt(nb, self._row_keys,
                                           self._col_keys, self._zero)
        if backend == "dict":
            if be.kind == "dict" and be.pinned:
                return self
            return AssociativeArray._adopt(
                DictBackend(dict(self._data), pinned=True),
                self._row_keys, self._col_keys, self._zero)
        if be.kind == "dict" and be.pinned:
            return AssociativeArray._adopt(DictBackend(be.data),
                                           self._row_keys, self._col_keys,
                                           self._zero)
        return self

    @classmethod
    def _adopt(cls, backend, row_keys, col_keys, zero) -> "AssociativeArray":
        """Internal: wrap a ready-made backend without re-validation."""
        self = object.__new__(cls)
        self._backend = backend
        self._row_keys = KeySet.coerce(row_keys)
        self._col_keys = KeySet.coerce(col_keys)
        self._zero = zero
        self._cache = {}
        return self

    @classmethod
    def _from_numeric(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        row_keys: Union[KeySet, Iterable[Any]],
        col_keys: Union[KeySet, Iterable[Any]],
        zero: Any,
        presorted: bool = False,
        filtered: bool = False,
    ) -> "AssociativeArray":
        """Internal: adopt columnar storage from a vectorised kernel.

        Positions are trusted (in-range for the key sets); entries equal
        to ``zero`` are dropped vectorised unless ``filtered`` says the
        caller already did.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not filtered:
            keep = vals != float(zero)
            if not bool(keep.all()):
                rows, cols, vals = rows[keep], cols[keep], vals[keep]
        rk = KeySet.coerce(row_keys)
        ck = KeySet.coerce(col_keys)
        be = NumericBackend(rows, cols, vals, (len(rk), len(ck)),
                            presorted=presorted)
        return cls._adopt(be, rk, ck, zero)

    # -- pickling: the cache is derived state; spill files stay lean ----------
    def __getstate__(self):
        return (self._backend, self._row_keys, self._col_keys, self._zero)

    def __setstate__(self, state) -> None:
        self._backend, self._row_keys, self._col_keys, self._zero = state
        self._cache = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        row_keys: Union[KeySet, Iterable[Any]],
        col_keys: Union[KeySet, Iterable[Any]],
        *,
        zero: Any = 0,
    ) -> "AssociativeArray":
        """All-zero array over the given key sets."""
        return cls({}, row_keys=row_keys, col_keys=col_keys, zero=zero)

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Tuple[Any, Any, Any]],
        *,
        row_keys: Union[KeySet, Iterable[Any], None] = None,
        col_keys: Union[KeySet, Iterable[Any], None] = None,
        zero: Any = 0,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        backend: str = "auto",
    ) -> "AssociativeArray":
        """Build from ``(row, col, value)`` triples.

        Duplicate coordinates raise unless ``combine`` is given, in which
        case values are combined left-to-right in input order (D4M's
        assoc-with-collision-function construction).  ``backend`` as in
        the constructor.
        """
        data: Dict[Tuple[Any, Any], Any] = {}
        for r, c, v in triples:
            key = (r, c)
            if key in data:
                if combine is None:
                    raise KeyError_(
                        f"duplicate coordinate {key!r}; pass combine= to "
                        "merge values")
                data[key] = combine(data[key], v)
            else:
                data[key] = v
        return cls(data, row_keys=row_keys, col_keys=col_keys, zero=zero,
                   backend=backend)

    @classmethod
    def from_dense(
        cls,
        rows: Sequence[Sequence[Any]],
        row_keys: Union[KeySet, Iterable[Any]],
        col_keys: Union[KeySet, Iterable[Any]],
        *,
        zero: Any = 0,
    ) -> "AssociativeArray":
        """Build from a dense row-major list of lists.

        ``rows[i][j]`` corresponds to ``(row_keys[i], col_keys[j])`` in
        *sorted* key order.
        """
        rk = KeySet.coerce(row_keys)
        ck = KeySet.coerce(col_keys)
        if len(rows) != len(rk):
            raise KeyError_(f"expected {len(rk)} rows, got {len(rows)}")
        data: Dict[Tuple[Any, Any], Any] = {}
        for i, row in enumerate(rows):
            if len(row) != len(ck):
                raise KeyError_(
                    f"row {i} has {len(row)} entries, expected {len(ck)}")
            for j, v in enumerate(row):
                if not _values_equal(v, zero):
                    data[(rk[i], ck[j])] = v
        return cls(data, row_keys=rk, col_keys=ck, zero=zero)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def row_keys(self) -> KeySet:
        """The row key set ``K1``."""
        return self._row_keys

    @property
    def col_keys(self) -> KeySet:
        """The column key set ``K2``."""
        return self._col_keys

    @property
    def zero(self) -> Any:
        """The array's zero element (unstored value)."""
        return self._zero

    @property
    def shape(self) -> Tuple[int, int]:
        """``(len(K1), len(K2))``."""
        return (len(self._row_keys), len(self._col_keys))

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) entries."""
        return self._backend.nnz

    def is_zero_value(self, v: Any) -> bool:
        """Whether ``v`` equals this array's zero."""
        return _values_equal(v, self._zero)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, row: Any, col: Any, default: Any = None) -> Any:
        """Value at ``(row, col)``; the zero (or ``default``) if unstored.

        Keys outside the key sets raise :class:`KeyError_`.
        """
        if row not in self._row_keys:
            raise KeyError_(f"row key {row!r} not in row key set")
        if col not in self._col_keys:
            raise KeyError_(f"column key {col!r} not in column key set")
        fallback = self._zero if default is None else default
        return self._data.get((row, col), fallback)

    def __getitem__(self, item: Tuple[Any, Any]) -> Any:
        """``A[r, c]`` → value; ``A[row_sel, col_sel]`` → sub-array.

        Scalar access requires both components to be existing keys; any
        other combination is interpreted as a pair of selectors (string
        ranges, prefixes, ``':'``, lists, slices, KeySets) and yields the
        selected sub-array, mirroring the paper's
        ``E(:, 'Genre|A : Genre|Z')``.
        """
        if not isinstance(item, tuple) or len(item) != 2:
            raise KeyError_("indexing requires a (row, col) pair")
        row_sel, col_sel = item
        scalar_row = not isinstance(row_sel, (slice, KeySet, list, tuple)) \
            and row_sel in self._row_keys
        scalar_col = not isinstance(col_sel, (slice, KeySet, list, tuple)) \
            and col_sel in self._col_keys
        # A string that is literally a key takes priority as scalar access;
        # but a row scalar with a column selector (or vice versa) still
        # produces a sub-array.
        if scalar_row and scalar_col:
            return self._data.get((row_sel, col_sel), self._zero)
        return self.select(row_sel if not scalar_row else [row_sel],
                           col_sel if not scalar_col else [col_sel])

    def select(self, row_selector: Selector, col_selector: Selector) -> "AssociativeArray":
        """Sub-array on the selected keys (selection semantics of Figure 1)."""
        rows = self._row_keys.select(row_selector)
        cols = self._col_keys.select(col_selector)
        be = self._backend
        if be.kind == "numeric":
            # Index-array permutation: mask the stored coordinates and
            # remap positions through (monotone) selection lookups — the
            # lex order survives, so no re-sort.
            rlook = embed_lookup(self._row_keys, rows.position_map(),
                                 len(self._row_keys))
            clook = embed_lookup(self._col_keys, cols.position_map(),
                                 len(self._col_keys))
            nr = rlook[be.rows]
            nc = clook[be.cols]
            keep = (nr >= 0) & (nc >= 0)
            sub = NumericBackend(nr[keep], nc[keep], be.vals[keep],
                                 (len(rows), len(cols)), presorted=True)
            return AssociativeArray._adopt(sub, rows, cols, self._zero)
        row_set, col_set = set(rows), set(cols)
        data = {(r, c): v for (r, c), v in self._data.items()
                if r in row_set and c in col_set}
        return AssociativeArray(data, row_keys=rows, col_keys=cols,
                                zero=self._zero,
                                backend=self._derived_backend)

    def row(self, row: Any) -> Dict[Any, Any]:
        """Stored entries of one row as ``{col: value}`` (sorted by col)."""
        if row not in self._row_keys:
            raise KeyError_(f"row key {row!r} not in row key set")
        pairs = [(c, v) for (r, c), v in self._data.items() if r == row]
        return dict(sorted(pairs, key=lambda cv: self._col_keys.index(cv[0])))

    def col(self, col: Any) -> Dict[Any, Any]:
        """Stored entries of one column as ``{row: value}`` (sorted by row)."""
        if col not in self._col_keys:
            raise KeyError_(f"column key {col!r} not in column key set")
        pairs = [(r, v) for (r, c), v in self._data.items() if c == col]
        return dict(sorted(pairs, key=lambda rv: self._row_keys.index(rv[0])))

    def entries(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Stored entries as ``(row, col, value)`` in (row, col) key order."""
        be = self._backend
        if be.kind == "numeric":
            # Columnar storage is already lex-sorted: stream it without
            # materialising the dict view or sorting in Python.
            rk = self._row_keys.keys()
            ck = self._col_keys.keys()
            for i, j, v in zip(be.rows.tolist(), be.cols.tolist(),
                               be.vals.tolist()):
                yield rk[i], ck[j], v
            return
        data = self._data
        ri = self._row_keys.position_map()
        ci = self._col_keys.position_map()
        for (r, c) in sorted(data, key=lambda rc: (ri[rc[0]], ci[rc[1]])):
            yield r, c, data[(r, c)]

    def triples(self) -> List[Tuple[Any, Any, Any]]:
        """:meth:`entries` as a list."""
        return list(self.entries())

    def nonzero_pattern(self) -> frozenset:
        """The set of stored coordinates — the array's *structure*.

        Definition I.5 characterises adjacency arrays purely through this
        pattern, so pattern equality is the core predicate of the paper.
        """
        return frozenset(self._data)

    def values_list(self) -> List[Any]:
        """Stored values in (row, col) key order."""
        return [v for (_r, _c, v) in self.entries()]

    def rows_nonempty(self) -> KeySet:
        """Row keys that have at least one stored entry."""
        be = self._backend
        if be.kind == "numeric":
            rk = self._row_keys.keys()
            return KeySet([rk[i] for i in np.unique(be.rows).tolist()],
                          presorted=True)
        present = {r for (r, _c) in self._data}
        return KeySet([r for r in self._row_keys if r in present],
                      presorted=True)

    def cols_nonempty(self) -> KeySet:
        """Column keys that have at least one stored entry."""
        be = self._backend
        if be.kind == "numeric":
            ck = self._col_keys.keys()
            return KeySet([ck[j] for j in np.unique(be.cols).tolist()],
                          presorted=True)
        present = {c for (_r, c) in self._data}
        return KeySet([c for c in self._col_keys if c in present],
                      presorted=True)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def transpose(self) -> "AssociativeArray":
        """Definition I.2: ``Aᵀ(k2, k1) = A(k1, k2)``."""
        be = self._backend
        if be.kind == "numeric":
            # Index-array permutation; this array's cached CSC becomes
            # the transpose's CSR, so Aᵀ arrives pre-compiled.
            return AssociativeArray._adopt(be.transposed(), self._col_keys,
                                           self._row_keys, self._zero)
        # Dict storage: reuse an already-promoted columnar form — or
        # promote a large array — and transpose by index permutation
        # instead of rebuilding (and re-validating) a transposed dict.
        # The bailout matches the other kernels: small arrays stay on
        # the generic path so exact Python value types are preserved
        # for the paper-figure cases, and pins are honoured.
        if not be.pinned:
            cached = self._cache.get("numeric_backend", _NO_NUMERIC)
            promoted = cached if cached is not _NO_NUMERIC else None
            if promoted is None and cached is _NO_NUMERIC \
                    and self.nnz >= VECTORIZE_MIN_NNZ:
                promoted = self.numeric_backend()
            if promoted is not None:
                return AssociativeArray._adopt(
                    promoted.transposed(), self._col_keys, self._row_keys,
                    self._zero)
        data = {(c, r): v for (r, c), v in self._data.items()}
        return AssociativeArray(data, row_keys=self._col_keys,
                                col_keys=self._row_keys, zero=self._zero,
                                backend=self._derived_backend)

    @property
    def T(self) -> "AssociativeArray":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def with_zero(self, zero: Any) -> "AssociativeArray":
        """Reinterpret the stored nonzeros over a different zero element.

        This is the Figure 3 move: the same incidence array is multiplied
        under op-pairs whose zeros are 0, −∞ or +∞; stored entries are the
        nonzeros in every case.  Stored values equal to the *new* zero
        would silently vanish, so that case raises.
        """
        for (r, c), v in self._data.items():
            if _values_equal(v, zero):
                raise KeyError_(
                    f"stored value at {(r, c)!r} equals the new zero "
                    f"{zero!r}; reinterpretation would drop it")
        return AssociativeArray(self._data, row_keys=self._row_keys,
                                col_keys=self._col_keys, zero=zero,
                                backend=self._derived_backend)

    def map_values(self, func: Callable[[Any], Any],
                   *, zero: Any = None) -> "AssociativeArray":
        """Apply ``func`` to every stored value (results equal to the zero
        are dropped).  ``zero`` overrides the result array's zero."""
        z = self._zero if zero is None else zero
        data = {rc: func(v) for rc, v in self._data.items()}
        return AssociativeArray(data, row_keys=self._row_keys,
                                col_keys=self._col_keys, zero=z,
                                backend=self._derived_backend)

    def restrict_values(self, predicate: Callable[[Any], bool]) -> "AssociativeArray":
        """Keep only stored entries whose value satisfies ``predicate``."""
        data = {rc: v for rc, v in self._data.items() if predicate(v)}
        return AssociativeArray(data, row_keys=self._row_keys,
                                col_keys=self._col_keys, zero=self._zero,
                                backend=self._derived_backend)

    def prune_to_pattern(self) -> "AssociativeArray":
        """Drop empty rows/columns, shrinking the key sets to the pattern."""
        if self._backend.kind == "numeric":
            return self.select(self.rows_nonempty(), self.cols_nonempty())
        return AssociativeArray(self._data,
                                row_keys=self.rows_nonempty(),
                                col_keys=self.cols_nonempty(),
                                zero=self._zero,
                                backend=self._derived_backend)

    def with_keys(
        self,
        row_keys: Union[KeySet, Iterable[Any], None] = None,
        col_keys: Union[KeySet, Iterable[Any], None] = None,
    ) -> "AssociativeArray":
        """Re-embed into (super)key sets, e.g. to share an edge set ``K``."""
        rk = self._row_keys if row_keys is None else KeySet.coerce(row_keys)
        ck = self._col_keys if col_keys is None else KeySet.coerce(col_keys)
        be = self._backend
        if be.kind == "numeric":
            rlook = embed_lookup(self._row_keys, rk.position_map(),
                                 len(self._row_keys))
            clook = embed_lookup(self._col_keys, ck.position_map(),
                                 len(self._col_keys))
            nr = rlook[be.rows]
            nc = clook[be.cols]
            # Stored entries must survive the embedding (unused keys may
            # drop) — the same contract the dict constructor enforces.
            if nr.size and int(nr.min()) < 0:
                key = self._row_keys[int(be.rows[int(np.argmin(nr))])]
                raise KeyError_(f"row key {key!r} not in row key set")
            if nc.size and int(nc.min()) < 0:
                key = self._col_keys[int(be.cols[int(np.argmin(nc))])]
                raise KeyError_(f"column key {key!r} not in column key set")
            emb = NumericBackend(nr, nc, be.vals, (len(rk), len(ck)),
                                 presorted=True)
            return AssociativeArray._adopt(emb, rk, ck, self._zero)
        return AssociativeArray(self._data, row_keys=rk, col_keys=ck,
                                zero=self._zero,
                                backend=self._derived_backend)

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Strict equality: key sets, zero, and stored entries all match."""
        if not isinstance(other, AssociativeArray):
            return NotImplemented
        if self._row_keys != other._row_keys:
            return False
        if self._col_keys != other._col_keys:
            return False
        if not _values_equal(self._zero, other._zero):
            return False
        if set(self._data) != set(other._data):
            return False
        return all(_values_equal(v, other._data[rc])
                   for rc, v in self._data.items())

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("AssociativeArray is unhashable")

    def same_pattern(self, other: "AssociativeArray") -> bool:
        """Whether both arrays store exactly the same coordinates."""
        return self.nonzero_pattern() == other.nonzero_pattern()

    def allclose(self, other: "AssociativeArray", *,
                 rel_tol: float = 1e-9, abs_tol: float = 1e-12) -> bool:
        """Pattern equality plus numeric closeness of stored values."""
        if not self.same_pattern(other):
            return False
        for rc, v in self._data.items():
            w = other._data[rc]
            if isinstance(v, (int, float)) and isinstance(w, (int, float)):
                v_nan = isinstance(v, float) and math.isnan(v)
                w_nan = isinstance(w, float) and math.isnan(w)
                if v_nan or w_nan:
                    if not (v_nan and w_nan):
                        return False
                elif math.isinf(v) or math.isinf(w):
                    if v != w:
                        return False
                elif not math.isclose(v, w, rel_tol=rel_tol, abs_tol=abs_tol):
                    return False
            elif not _values_equal(v, w):
                return False
        return True

    # ------------------------------------------------------------------
    # Algebra (delegating to matmul / elementwise modules)
    # ------------------------------------------------------------------
    def dot(self, other: "AssociativeArray", op_pair,
            *, mode: str = "sparse", kernel: str = "auto") -> "AssociativeArray":
        """Array multiplication ``self ⊕.⊗ other`` (Definition I.3).

        See :func:`repro.arrays.matmul.multiply` for ``mode``/``kernel``.
        """
        from repro.arrays.matmul import multiply
        return multiply(self, other, op_pair, mode=mode, kernel=kernel)

    def add(self, other: "AssociativeArray", op) -> "AssociativeArray":
        """Element-wise ``⊕`` (union-pattern evaluation)."""
        from repro.arrays.elementwise import elementwise_add
        return elementwise_add(self, other, op)

    def multiply_elementwise(self, other: "AssociativeArray", op) -> "AssociativeArray":
        """Element-wise ``⊗`` (union-pattern evaluation)."""
        from repro.arrays.elementwise import elementwise_multiply
        return elementwise_multiply(self, other, op)

    # ------------------------------------------------------------------
    # Conversion / display
    # ------------------------------------------------------------------
    def to_dense(self) -> List[List[Any]]:
        """Dense row-major list of lists, zero-filled."""
        out = [[self._zero] * len(self._col_keys)
               for _ in range(len(self._row_keys))]
        ri = self._row_keys.position_map()
        ci = self._col_keys.position_map()
        for (r, c), v in self._data.items():
            out[ri[r]][ci[c]] = v
        return out

    def to_dict(self) -> Dict[Tuple[Any, Any], Any]:
        """A copy of the stored entries."""
        return dict(self._data)

    def __str__(self) -> str:
        from repro.arrays.printing import format_array
        return format_array(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AssociativeArray(shape={self.shape}, nnz={self.nnz}, "
                f"zero={self._zero!r})")

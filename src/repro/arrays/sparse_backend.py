"""Vectorised NumPy/SciPy kernels for numeric op-pairs.

The generic kernel in :mod:`repro.arrays.matmul` works for every value set
but pays Python-interpreter cost per term.  When an op-pair's operations
have NumPy ufunc forms (``+``, ``×``, ``max``, ``min``) and the array
values are plain numbers, three vectorised kernels apply:

``"scipy"``
    ``scipy.sparse`` CSR×CSR for the genuine ``+.×`` pair — the fastest
    path and the standard adjacency-construction route in production
    systems.

``"sortmerge"``
    The preferred semiring SpGEMM for *any* ufunc pair (implemented in
    :mod:`repro.arrays.matmul`, dispatched here for a uniform kernel
    namespace): sort-merge join of A's cached CSC against B's cached
    CSR on the shared inner coordinate codes, one ``⊗`` ufunc call over
    the gathered values, stable lexicographic group sort, ``⊕`` via
    ``np.ufunc.reduceat``.

``"reduceat"``
    The earlier Gustavson-order expansion SpGEMM for ufunc pairs:
    expand all ``A(i,k) ⊗ B(k,j)`` products with one gather per A
    entry's B-row segment, lexsort by output coordinate (stable, so
    inner-key order is preserved within groups), and group-reduce ``⊕``
    with ``np.ufunc.reduceat``.  Kept as an alternative expansion
    strategy; ``auto`` now routes ufunc pairs to ``sortmerge``.  Memory
    for both expansion kernels is proportional to the number of
    multiplicative terms (the flop count), the classic space/time trade
    of expansion-based SpGEMM.

``"dense_blocked"``
    Definition I.3's dense fold, blocked over output rows: operands are
    densified with the op-pair's **zero as fill** (0, −∞ or +∞ — the
    semiring-aware fill makes annihilation native), then
    ``C = ⊕.reduce(⊗(A[:, :, None], B[None, :, :]), axis=1)`` per block.

Kernel/mode pairing is strict: ``scipy``/``sortmerge``/``reduceat``
implement *sparse* evaluation semantics, ``dense_blocked`` implements
*dense* semantics (they coincide exactly for criteria-compliant
op-pairs — property-tested).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import NumericBackend, is_number as _is_number
from repro.values.semiring import OpPair

__all__ = [
    "vectorizable",
    "multiply_vectorized",
    "to_scipy",
    "from_scipy",
    "KERNELS",
]

#: Kernel names accepted by :func:`multiply_vectorized`.
KERNELS = ("scipy", "sortmerge", "reduceat", "dense_blocked")

#: Row-block size for the dense kernel (bounds peak memory at
#: ``block × |K3| × |K2|`` float64).
DENSE_BLOCK_ROWS = 64


def vectorizable(a: AssociativeArray, b: AssociativeArray,
                 op_pair: OpPair) -> bool:
    """Whether the vectorised kernels can run this product exactly.

    Requires ufunc forms for both operations, numeric zero/one, and
    operands whose storage is (or promotes to) the numeric backend —
    arrays pinned to ``backend="dict"`` report False, which is the
    escape hatch that forces the generic path.
    """
    if not (op_pair.has_ufuncs and op_pair.is_numeric):
        return False
    return a.numeric_backend() is not None and \
        b.numeric_backend() is not None


# ---------------------------------------------------------------------------
# CSR conversion
# ---------------------------------------------------------------------------

def _to_csr_arrays(
    array: AssociativeArray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(data, indices, indptr)`` float64 CSR arrays in key order.

    The view is owned by the array's numeric backend and persists across
    operations (arrays are immutable by convention), so chained products
    pay any dict→columnar conversion once — the same trick D4M uses by
    keeping arrays in sorted-triple form.
    """
    nb = array.numeric_backend()
    if nb is None:
        from repro.arrays.matmul import MatmulError
        raise MatmulError(
            "array values/zero are not plain numbers (or the array is "
            "pinned to the dict backend); use kernel='generic'")
    return nb.csr()


def to_scipy(array: AssociativeArray) -> sp.csr_matrix:
    """Convert to ``scipy.sparse.csr_matrix`` (requires zero == 0).

    SciPy's implicit background value is 0, so arrays with a different
    zero (−∞, +∞, ...) cannot be represented faithfully and raise.
    """
    if array.zero != 0:
        raise ValueError(
            f"scipy sparse matrices assume zero == 0, array has "
            f"{array.zero!r}")
    data, indices, indptr = _to_csr_arrays(array)
    return sp.csr_matrix(
        (data, indices, indptr),
        shape=(len(array.row_keys), len(array.col_keys)))


def from_scipy(
    matrix: sp.spmatrix,
    row_keys,
    col_keys,
    *,
    zero: float = 0.0,
) -> AssociativeArray:
    """Wrap a SciPy sparse matrix as a (numeric-backed) associative array.

    Duplicate coordinates are summed first (scipy's canonical-form
    semantics: a COO matrix with duplicates *represents* their sum).
    """
    coo = matrix.tocoo()
    rk = list(row_keys)
    ck = list(col_keys)
    if coo.shape != (len(rk), len(ck)):
        raise ValueError(
            f"shape {coo.shape} does not match key sets "
            f"({len(rk)}, {len(ck)})")
    coo.sum_duplicates()        # also sorts row-major: entries arrive canonical
    return AssociativeArray._from_numeric(
        coo.row, coo.col, coo.data, row_keys=rk, col_keys=ck, zero=zero,
        presorted=True)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------

def multiply_vectorized(
    a: AssociativeArray,
    b: AssociativeArray,
    op_pair: OpPair,
    *,
    kernel: str,
    mode: str = "sparse",
) -> AssociativeArray:
    """Dispatch to a vectorised kernel; see module docstring for pairing."""
    from repro.arrays.matmul import MatmulError
    if kernel not in KERNELS:
        raise MatmulError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
    if not vectorizable(a, b, op_pair):
        raise MatmulError(
            f"op-pair {op_pair.name!r} / operand values are not vectorisable; "
            "use kernel='generic'")
    if kernel == "dense_blocked":
        if mode != "dense":
            raise MatmulError(
                "dense_blocked implements dense semantics; pass mode='dense' "
                "(for compliant op-pairs the results coincide with sparse)")
        return _dense_blocked(a, b, op_pair)
    if mode != "sparse":
        raise MatmulError(
            f"kernel {kernel!r} implements sparse semantics; pass "
            "mode='sparse' or kernel='dense_blocked'")
    if kernel == "scipy":
        if op_pair.add.ufunc is not np.add or op_pair.mul.ufunc is not np.multiply:
            raise MatmulError(
                "the scipy kernel applies only to the +.× op-pair")
        return _scipy_plus_times(a, b, op_pair)
    if kernel == "sortmerge":
        from repro.arrays.matmul import multiply_sortmerge
        return multiply_sortmerge(a, b, op_pair)
    return _reduceat_spgemm(a, b, op_pair)


def _scipy_plus_times(a: AssociativeArray, b: AssociativeArray,
                      op_pair: OpPair) -> AssociativeArray:
    """CSR×CSR through scipy for the arithmetic semiring.

    The product's CSR arrays are adopted directly as the result's
    backend — chained correlations never leave NumPy.
    """
    sa = _csr_for_pair(a)
    sb = _csr_for_pair(b)
    sc = sa @ sb
    sc.eliminate_zeros()
    sc.sort_indices()
    be = NumericBackend.from_csr(sc.data, sc.indices, sc.indptr, sc.shape)
    return AssociativeArray._adopt(be, a.row_keys, b.col_keys, op_pair.zero)


def _csr_for_pair(array: AssociativeArray) -> sp.csr_matrix:
    data, indices, indptr = _to_csr_arrays(array)
    return sp.csr_matrix(
        (data, indices, indptr),
        shape=(len(array.row_keys), len(array.col_keys)))


def _reduceat_spgemm(a: AssociativeArray, b: AssociativeArray,
                     op_pair: OpPair) -> AssociativeArray:
    """Expansion SpGEMM: gather → ⊗ → stable lexsort → ⊕ reduceat.

    Stability matters: within an output coordinate group the products stay
    in ascending inner-key order, so the ``reduceat`` fold follows the key
    order exactly as the generic kernel does.
    """
    add_uf = op_pair.add.ufunc
    mul_uf = op_pair.mul.ufunc
    a_data, a_indices, a_indptr = _to_csr_arrays(a)
    b_data, b_indices, b_indptr = _to_csr_arrays(b)
    m = len(a.row_keys)

    if a_data.size == 0 or b_data.size == 0:
        return AssociativeArray.empty(a.row_keys, b.col_keys,
                                      zero=op_pair.zero)

    # Per A-entry: the row it lives in, and its inner key's B-row segment.
    entry_rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(a_indptr))
    seg_starts = b_indptr[a_indices]
    seg_lens = b_indptr[a_indices + 1] - seg_starts
    total = int(seg_lens.sum())
    if total == 0:
        return AssociativeArray.empty(a.row_keys, b.col_keys,
                                      zero=op_pair.zero)

    # Flat gather of every multiplicative term (the expansion).
    cum = np.concatenate(([0], np.cumsum(seg_lens)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(cum, seg_lens)
    gather = np.repeat(seg_starts, seg_lens) + within
    out_rows = np.repeat(entry_rows, seg_lens)
    out_cols = b_indices[gather]
    prods = mul_uf(np.repeat(a_data, seg_lens), b_data[gather])

    # Stable sort by output coordinate; equal coordinates keep gather order
    # (= ascending inner key).
    order = np.lexsort((out_cols, out_rows))
    out_rows, out_cols, prods = out_rows[order], out_cols[order], prods[order]
    change = np.empty(total, dtype=bool)
    change[0] = True
    np.logical_or(out_rows[1:] != out_rows[:-1],
                  out_cols[1:] != out_cols[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    reduced = add_uf.reduceat(prods, starts)
    grp_rows = out_rows[starts]
    grp_cols = out_cols[starts]

    zero = float(op_pair.zero)
    keep = reduced != zero
    return AssociativeArray._from_numeric(
        grp_rows[keep], grp_cols[keep], reduced[keep],
        row_keys=a.row_keys, col_keys=b.col_keys, zero=op_pair.zero,
        presorted=True, filtered=True)


def _dense_blocked(a: AssociativeArray, b: AssociativeArray,
                   op_pair: OpPair) -> AssociativeArray:
    """Blocked dense evaluation with semiring-zero fill."""
    add_uf = op_pair.add.ufunc
    mul_uf = op_pair.mul.ufunc
    zero = float(op_pair.zero)
    m, k = a.shape
    k2, n = b.shape
    assert k == k2

    if k == 0 or m == 0:
        # Empty inner key set (every ⊕-fold is empty, i.e. all zero) or
        # no output rows at all.
        return AssociativeArray.empty(a.row_keys, b.col_keys,
                                      zero=op_pair.zero)
    da = _to_dense(a, zero)
    db = _to_dense(b, zero)
    out_rows = []
    out_cols = []
    out_vals = []
    for start in range(0, m, DENSE_BLOCK_ROWS):
        stop = min(start + DENSE_BLOCK_ROWS, m)
        block = mul_uf(da[start:stop, :, None], db[None, :, :])
        cblock = add_uf.reduce(block, axis=1)
        bi, j = np.nonzero(cblock != zero)
        out_rows.append(bi.astype(np.int64) + start)
        out_cols.append(j.astype(np.int64))
        out_vals.append(cblock[bi, j])
    # Blocks come out in row order and np.nonzero is row-major, so the
    # concatenation is already lex-sorted.
    return AssociativeArray._from_numeric(
        np.concatenate(out_rows), np.concatenate(out_cols),
        np.concatenate(out_vals).astype(np.float64),
        row_keys=a.row_keys, col_keys=b.col_keys, zero=op_pair.zero,
        presorted=True, filtered=True)


def _to_dense(array: AssociativeArray, fill: float) -> np.ndarray:
    nb = array.numeric_backend()
    if nb is not None:
        out = np.full(array.shape, fill, dtype=np.float64)
        out[nb.rows, nb.cols] = nb.vals
        return out
    out = np.full(array.shape, fill, dtype=np.float64)
    rpos = array.row_keys.position_map()
    cpos = array.col_keys.position_map()
    for (r, c), v in array.to_dict().items():
        out[rpos[r], cpos[c]] = float(v)
    return out

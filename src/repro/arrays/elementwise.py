"""Element-wise operations on associative arrays.

D4M exposes element-wise ``⊕`` and ``⊗`` alongside array multiplication
(the paper's Section IV: "the same element-wise addition, element-wise
multiplication, and array multiplication syntax").  Both are evaluated over
the **union** of the operands' stored patterns with unstored entries read
as the arrays' zero; coordinates outside both patterns take the value
``op(zero, zero)``, which must equal the zero for the result to be
sparse-representable — checked and enforced.

For criteria-compliant op-pairs this reduces to the familiar semantics:
element-wise ``⊕`` unions patterns (zero-sum-freeness: nothing cancels),
and element-wise ``⊗`` with an annihilating zero intersects them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import (
    VECTORIZE_MIN_NNZ,
    union_apply,
    usable_numeric_zero,
)
from repro.arrays.keys import KeyError_
from repro.values.equality import values_equal as _eq
from repro.values.operations import BinaryOp

__all__ = ["elementwise_add", "elementwise_multiply", "elementwise_apply",
           "vectorizable_operands"]


def vectorizable_operands(a: AssociativeArray, b: AssociativeArray):
    """Both operands' numeric backends under the shared fast-path policy.

    The one pairwise promotion gate (used here and by the shard
    ⊕-merge): operands already numeric-backed always qualify; tiny
    dict-backed pairs stay on the generic paths (conversion overhead
    dominates and exact Python value types are preserved); anything
    that cannot promote disqualifies the pair.  Returns ``(na, nb)`` or
    ``None``.
    """
    native = a.backend == "numeric" or b.backend == "numeric"
    if not native and a.nnz + b.nnz < VECTORIZE_MIN_NNZ:
        return None
    na = a.numeric_backend()
    if na is None:
        return None
    nb = b.numeric_backend()
    if nb is None:
        return None
    return na, nb


def _check_aligned(a: AssociativeArray, b: AssociativeArray) -> None:
    if a.row_keys != b.row_keys or a.col_keys != b.col_keys:
        raise KeyError_(
            "element-wise operations require identical key sets; "
            "re-embed with with_keys() over the key-set unions first")


def elementwise_apply(
    a: AssociativeArray,
    b: AssociativeArray,
    op: BinaryOp,
    *,
    zero: Any = None,
) -> AssociativeArray:
    """``C(i,j) = op(A(i,j), B(i,j))`` over the union pattern.

    ``zero`` sets the result's zero element (default: ``a.zero``).  Raises
    if ``op(a.zero, b.zero)`` is not that zero — such results are not
    sparse-representable.
    """
    _check_aligned(a, b)
    result_zero = a.zero if zero is None else zero
    background = op(a.zero, b.zero)
    if not _eq(background, result_zero):
        raise KeyError_(
            f"op({a.zero!r}, {b.zero!r}) = {background!r} ≠ {result_zero!r}: "
            "result would be dense; element-wise evaluation refused")
    fast = _apply_vectorized(a, b, op, result_zero)
    if fast is not None:
        return fast
    data: Dict[Tuple[Any, Any], Any] = {}
    a_data, b_data = a.to_dict(), b.to_dict()
    for rc in set(a_data) | set(b_data):
        v = op(a_data.get(rc, a.zero), b_data.get(rc, b.zero))
        if not _eq(v, result_zero):
            data[rc] = v
    return AssociativeArray(data, row_keys=a.row_keys, col_keys=a.col_keys,
                            zero=result_zero,
                            backend="dict" if a.pinned and b.pinned
                            else "auto")


def _apply_vectorized(
    a: AssociativeArray,
    b: AssociativeArray,
    op: BinaryOp,
    result_zero: Any,
) -> Optional[AssociativeArray]:
    """Ufunc evaluation over the union pattern on aligned index arrays.

    Applies when the op has a ufunc form, every zero involved is a plain
    non-NaN number, and both operands carry (or promote to) the numeric
    backend.  Tiny dict-backed operands stay generic — that preserves
    exact Python value types for the paper-figure-sized arrays.  Returns
    ``None`` when not applicable.
    """
    if op.ufunc is None:
        return None
    if not (usable_numeric_zero(result_zero) and usable_numeric_zero(a.zero)
            and usable_numeric_zero(b.zero)):
        return None
    backends = vectorizable_operands(a, b)
    if backends is None:
        return None
    na, nb = backends
    rows, cols, vals = union_apply(
        na, nb, op.ufunc, float(a.zero), float(b.zero), float(result_zero),
        a.shape)
    return AssociativeArray._from_numeric(
        rows, cols, vals, row_keys=a.row_keys, col_keys=a.col_keys,
        zero=result_zero, presorted=True, filtered=True)


def elementwise_add(a: AssociativeArray, b: AssociativeArray,
                    op: BinaryOp) -> AssociativeArray:
    """Element-wise ``⊕`` (alias of :func:`elementwise_apply`)."""
    return elementwise_apply(a, b, op)


def elementwise_multiply(a: AssociativeArray, b: AssociativeArray,
                         op: BinaryOp) -> AssociativeArray:
    """Element-wise ``⊗`` over the union pattern.

    With an annihilating zero this yields the pattern *intersection*; for
    ops without an annihilator (e.g. ``⊗ = +`` read element-wise) entries
    survive wherever either operand is stored.
    """
    return elementwise_apply(a, b, op)

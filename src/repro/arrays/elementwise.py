"""Element-wise operations on associative arrays.

D4M exposes element-wise ``⊕`` and ``⊗`` alongside array multiplication
(the paper's Section IV: "the same element-wise addition, element-wise
multiplication, and array multiplication syntax").  Both are evaluated over
the **union** of the operands' stored patterns with unstored entries read
as the arrays' zero; coordinates outside both patterns take the value
``op(zero, zero)``, which must equal the zero for the result to be
sparse-representable — checked and enforced.

For criteria-compliant op-pairs this reduces to the familiar semantics:
element-wise ``⊕`` unions patterns (zero-sum-freeness: nothing cancels),
and element-wise ``⊗`` with an annihilating zero intersects them.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeyError_
from repro.values.operations import BinaryOp

__all__ = ["elementwise_add", "elementwise_multiply", "elementwise_apply"]


def _check_aligned(a: AssociativeArray, b: AssociativeArray) -> None:
    if a.row_keys != b.row_keys or a.col_keys != b.col_keys:
        raise KeyError_(
            "element-wise operations require identical key sets; "
            "re-embed with with_keys() over the key-set unions first")


def elementwise_apply(
    a: AssociativeArray,
    b: AssociativeArray,
    op: BinaryOp,
    *,
    zero: Any = None,
) -> AssociativeArray:
    """``C(i,j) = op(A(i,j), B(i,j))`` over the union pattern.

    ``zero`` sets the result's zero element (default: ``a.zero``).  Raises
    if ``op(a.zero, b.zero)`` is not that zero — such results are not
    sparse-representable.
    """
    _check_aligned(a, b)
    result_zero = a.zero if zero is None else zero
    background = op(a.zero, b.zero)
    if not _eq(background, result_zero):
        raise KeyError_(
            f"op({a.zero!r}, {b.zero!r}) = {background!r} ≠ {result_zero!r}: "
            "result would be dense; element-wise evaluation refused")
    data: Dict[Tuple[Any, Any], Any] = {}
    a_data, b_data = a.to_dict(), b.to_dict()
    for rc in set(a_data) | set(b_data):
        v = op(a_data.get(rc, a.zero), b_data.get(rc, b.zero))
        if not _eq(v, result_zero):
            data[rc] = v
    return AssociativeArray(data, row_keys=a.row_keys, col_keys=a.col_keys,
                            zero=result_zero)


def elementwise_add(a: AssociativeArray, b: AssociativeArray,
                    op: BinaryOp) -> AssociativeArray:
    """Element-wise ``⊕`` (alias of :func:`elementwise_apply`)."""
    return elementwise_apply(a, b, op)


def elementwise_multiply(a: AssociativeArray, b: AssociativeArray,
                         op: BinaryOp) -> AssociativeArray:
    """Element-wise ``⊗`` over the union pattern.

    With an annihilating zero this yields the pattern *intersection*; for
    ops without an annihilator (e.g. ``⊗ = +`` read element-wise) entries
    survive wherever either operand is stored.
    """
    return elementwise_apply(a, b, op)


def _eq(x: Any, y: Any) -> bool:
    import math
    if isinstance(x, float) and isinstance(y, float) \
            and math.isnan(x) and math.isnan(y):
        return True
    try:
        return bool(x == y)
    except Exception:  # pragma: no cover
        return x is y

"""Row/column reductions over arbitrary ``⊕`` operations.

The D4M idiom ``sum(A, 1)`` / ``sum(A, 2)`` generalised to any binary
operation with identity: reduce each row (or column) of an associative
array by a left fold in key order.  Degree vectors, row maxima for
``max.min`` normalisation, per-vertex strengths — the standard
post-processing steps after adjacency construction — are all instances.

Folds include **stored entries only** (the sparse convention); as with
array multiplication, that matches the dense Definition-I.3-style fold
exactly when the op's identity annihilates the missing terms, i.e. when
the entries' op is the ``⊕`` of a certified pair.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeySet
from repro.values.operations import BinaryOp

__all__ = [
    "reduce_rows",
    "reduce_cols",
    "row_counts",
    "col_counts",
    "total_reduce",
    "scale_rows",
    "scale_cols",
]


def reduce_rows(array: AssociativeArray, op: BinaryOp) -> Dict[Any, Any]:
    """``out[r] = ⊕_c A(r, c)`` over stored entries, folded in column-key
    order.  Rows with no stored entries are omitted."""
    grouped: Dict[Any, list] = {}
    for r, _c, v in array.entries():       # entries() is (row, col)-ordered
        grouped.setdefault(r, []).append(v)
    return {r: op.fold(vs) for r, vs in grouped.items()}


def reduce_cols(array: AssociativeArray, op: BinaryOp) -> Dict[Any, Any]:
    """``out[c] = ⊕_r A(r, c)`` over stored entries, folded in row-key
    order.  Columns with no stored entries are omitted."""
    grouped: Dict[Any, list] = {}
    for r, c, v in array.entries():
        grouped.setdefault(c, []).append(v)
    return {c: op.fold(vs) for c, vs in grouped.items()}


def row_counts(array: AssociativeArray) -> Dict[Any, int]:
    """Stored entries per row (the pattern out-degree), zero-filled."""
    out = {r: 0 for r in array.row_keys}
    for (r, _c) in array.nonzero_pattern():
        out[r] += 1
    return out


def col_counts(array: AssociativeArray) -> Dict[Any, int]:
    """Stored entries per column (the pattern in-degree), zero-filled."""
    out = {c: 0 for c in array.col_keys}
    for (_r, c) in array.nonzero_pattern():
        out[c] += 1
    return out


def total_reduce(array: AssociativeArray, op: BinaryOp) -> Any:
    """Fold ``op`` over every stored value in (row, col) key order.

    Returns the op's identity for an empty array.
    """
    return op.fold(array.values_list())


def scale_rows(
    array: AssociativeArray,
    factors: Dict[Any, Any],
    op: BinaryOp,
    *,
    missing: Optional[Any] = None,
) -> AssociativeArray:
    """``B(r, c) = op(factors[r], A(r, c))`` — e.g. row normalisation.

    Rows absent from ``factors`` use ``missing`` (default: the op's
    identity, leaving the row unchanged).
    """
    default = op.identity if missing is None else missing
    data = {(r, c): op(factors.get(r, default), v)
            for (r, c), v in array.to_dict().items()}
    return AssociativeArray(data, row_keys=array.row_keys,
                            col_keys=array.col_keys, zero=array.zero)


def scale_cols(
    array: AssociativeArray,
    factors: Dict[Any, Any],
    op: BinaryOp,
    *,
    missing: Optional[Any] = None,
) -> AssociativeArray:
    """``B(r, c) = op(A(r, c), factors[c])`` — column-wise scaling.

    The factor is the *right* operand (op may be non-commutative).
    """
    default = op.identity if missing is None else missing
    data = {(r, c): op(v, factors.get(c, default))
            for (r, c), v in array.to_dict().items()}
    return AssociativeArray(data, row_keys=array.row_keys,
                            col_keys=array.col_keys, zero=array.zero)

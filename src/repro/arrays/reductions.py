"""Row/column reductions over arbitrary ``⊕`` operations.

The D4M idiom ``sum(A, 1)`` / ``sum(A, 2)`` generalised to any binary
operation with identity: reduce each row (or column) of an associative
array by a left fold in key order.  Degree vectors, row maxima for
``max.min`` normalisation, per-vertex strengths — the standard
post-processing steps after adjacency construction — are all instances.

Folds include **stored entries only** (the sparse convention); as with
array multiplication, that matches the dense Definition-I.3-style fold
exactly when the op's identity annihilates the missing terms, i.e. when
the entries' op is the ``⊕`` of a certified pair.

Arrays on the numeric backend (:mod:`repro.arrays.backend`) reduce
through vectorised kernels: ``ufunc.reduceat`` over the CSR/CSC row
groups for the folds (group order is key order, so the fold order is
identical to the generic path), ``bincount`` for the pattern counts,
and index-gathered ufunc application for row/column scaling.  Every
function falls back to the generic dict implementation for exotic
value sets, NaN zeros, or ops without a ufunc form.
"""

from __future__ import annotations

import numpy as np

from typing import Any, Dict, Optional

from repro.arrays.associative import AssociativeArray
from repro.arrays.backend import (
    VECTORIZE_MIN_NNZ,
    NumericBackend,
    float64_exact,
    is_number,
    usable_numeric_zero,
)
from repro.arrays.keys import KeySet
from repro.values.operations import BinaryOp

__all__ = [
    "reduce_rows",
    "reduce_cols",
    "row_counts",
    "col_counts",
    "total_reduce",
    "scale_rows",
    "scale_cols",
]


def _fast_backend(array: AssociativeArray,
                  op: Optional[BinaryOp]) -> Optional[NumericBackend]:
    """The numeric backend when the vectorised path applies, else None.

    Requires a ufunc form of ``op`` (when one is involved) and keeps
    tiny dict-backed arrays on the generic path so exact Python value
    types are preserved for the paper-figure-sized cases.  Fold-type
    callers additionally seed with the identity (see :func:`_seed`), so
    ``op`` must be associative with a plain numeric identity for the
    seeded group-reduce to equal the generic left fold.
    """
    if op is not None:
        if op.ufunc is None or not op.associative:
            return None
        if not usable_numeric_zero(op.identity):
            return None
    if array.backend != "numeric" and array.nnz < VECTORIZE_MIN_NNZ:
        return None
    return array.numeric_backend()


def _seed(op: BinaryOp, reduced: np.ndarray) -> np.ndarray:
    """Fold-from-identity semantics: ``e ⊕ (v₁ ⊕ … ⊕ vₙ)``.

    The generic path starts every fold at the identity, which matters
    when stored values fall outside the range where the identity is
    neutral (e.g. ``max0`` — identity 0 — over negative entries).  For
    the associative ops the fast path admits, prepending the identity
    to the group fold is exactly one more ufunc application.
    """
    return op.ufunc(float(op.identity), reduced)


def reduce_rows(array: AssociativeArray, op: BinaryOp) -> Dict[Any, Any]:
    """``out[r] = ⊕_c A(r, c)`` over stored entries, folded in column-key
    order.  Rows with no stored entries are omitted."""
    nb = _fast_backend(array, op)
    if nb is not None:
        data, _indices, indptr = nb.csr()
        nonempty = np.flatnonzero(np.diff(indptr))
        if nonempty.size == 0:
            return {}
        reduced = _seed(op, op.ufunc.reduceat(data, indptr[nonempty]))
        rk = array.row_keys.keys()
        return {rk[i]: v for i, v in zip(nonempty.tolist(), reduced.tolist())}
    grouped: Dict[Any, list] = {}
    for r, _c, v in array.entries():       # entries() is (row, col)-ordered
        grouped.setdefault(r, []).append(v)
    return {r: op.fold(vs) for r, vs in grouped.items()}


def reduce_cols(array: AssociativeArray, op: BinaryOp) -> Dict[Any, Any]:
    """``out[c] = ⊕_r A(r, c)`` over stored entries, folded in row-key
    order.  Columns with no stored entries are omitted."""
    nb = _fast_backend(array, op)
    if nb is not None:
        data, _rows, indptr, _perm = nb.csc()
        nonempty = np.flatnonzero(np.diff(indptr))
        if nonempty.size == 0:
            return {}
        reduced = _seed(op, op.ufunc.reduceat(data, indptr[nonempty]))
        ck = array.col_keys.keys()
        return {ck[j]: v for j, v in zip(nonempty.tolist(), reduced.tolist())}
    grouped: Dict[Any, list] = {}
    for r, c, v in array.entries():
        grouped.setdefault(c, []).append(v)
    return {c: op.fold(vs) for c, vs in grouped.items()}


def row_counts(array: AssociativeArray) -> Dict[Any, int]:
    """Stored entries per row (the pattern out-degree), zero-filled."""
    nb = _fast_backend(array, None)
    if nb is not None:
        counts = np.bincount(nb.rows, minlength=len(array.row_keys))
        return dict(zip(array.row_keys, counts.tolist()))
    out = {r: 0 for r in array.row_keys}
    for (r, _c) in array.nonzero_pattern():
        out[r] += 1
    return out


def col_counts(array: AssociativeArray) -> Dict[Any, int]:
    """Stored entries per column (the pattern in-degree), zero-filled."""
    nb = _fast_backend(array, None)
    if nb is not None:
        counts = np.bincount(nb.cols, minlength=len(array.col_keys))
        return dict(zip(array.col_keys, counts.tolist()))
    out = {c: 0 for c in array.col_keys}
    for (_r, c) in array.nonzero_pattern():
        out[c] += 1
    return out


def total_reduce(array: AssociativeArray, op: BinaryOp) -> Any:
    """Fold ``op`` over every stored value in (row, col) key order.

    Returns the op's identity for an empty array.
    """
    nb = _fast_backend(array, op)
    if nb is not None and nb.nnz:
        return _seed(op, op.ufunc.reduce(nb.vals)).item()
    return op.fold(array.values_list())


def _factor_array(factors: Dict[Any, Any], keys: KeySet,
                  default: Any) -> Optional[np.ndarray]:
    """Dense per-position factor gather; None when any value is exotic
    (or an int float64 cannot hold exactly)."""
    if not (is_number(default) and float64_exact(default)):
        return None
    out = np.full(len(keys), float(default), dtype=np.float64)
    positions = keys.position_map()
    for k, v in factors.items():
        pos = positions.get(k)
        if pos is None:
            continue               # extra factor keys are ignored, as get()
        if not (is_number(v) and float64_exact(v)):
            return None
        out[pos] = v
    return out


def scale_rows(
    array: AssociativeArray,
    factors: Dict[Any, Any],
    op: BinaryOp,
    *,
    missing: Optional[Any] = None,
) -> AssociativeArray:
    """``B(r, c) = op(factors[r], A(r, c))`` — e.g. row normalisation.

    Rows absent from ``factors`` use ``missing`` (default: the op's
    identity, leaving the row unchanged).
    """
    default = op.identity if missing is None else missing
    nb = _fast_backend(array, op)
    if nb is not None and usable_numeric_zero(array.zero):
        farr = _factor_array(factors, array.row_keys, default)
        if farr is not None:
            vals = op.ufunc(farr[nb.rows], nb.vals)
            return AssociativeArray._from_numeric(
                nb.rows, nb.cols, vals, row_keys=array.row_keys,
                col_keys=array.col_keys, zero=array.zero, presorted=True)
    data = {(r, c): op(factors.get(r, default), v)
            for (r, c), v in array.to_dict().items()}
    return AssociativeArray(data, row_keys=array.row_keys,
                            col_keys=array.col_keys, zero=array.zero)


def scale_cols(
    array: AssociativeArray,
    factors: Dict[Any, Any],
    op: BinaryOp,
    *,
    missing: Optional[Any] = None,
) -> AssociativeArray:
    """``B(r, c) = op(A(r, c), factors[c])`` — column-wise scaling.

    The factor is the *right* operand (op may be non-commutative).
    """
    default = op.identity if missing is None else missing
    nb = _fast_backend(array, op)
    if nb is not None and usable_numeric_zero(array.zero):
        farr = _factor_array(factors, array.col_keys, default)
        if farr is not None:
            vals = op.ufunc(nb.vals, farr[nb.cols])
            return AssociativeArray._from_numeric(
                nb.rows, nb.cols, vals, row_keys=array.row_keys,
                col_keys=array.col_keys, zero=array.zero, presorted=True)
    data = {(r, c): op(v, factors.get(c, default))
            for (r, c), v in array.to_dict().items()}
    return AssociativeArray(data, row_keys=array.row_keys,
                            col_keys=array.col_keys, zero=array.zero)

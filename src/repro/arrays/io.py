"""Exploded-view construction and file round-trips.

Figure 1's construction: a database table (rows = records, columns =
fields) becomes a sparse associative array whose column keys are
``field|value`` strings — "the column key and the value are concatenated
with a separator symbol (in this case ``|``) resulting in every unique pair
of column and value having its own column in the sparse view.  The new
value is usually 1 to denote the existence of an entry."

Multi-valued fields (a record with three writers) explode into several
columns, which is exactly how the music table yields multiple ``Writer|*``
entries per track.

Also provides TSV triple round-trips (the D4M on-disk format) and CSV table
reading.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeyError_, KeySet

__all__ = [
    "explode_table",
    "collapse_exploded",
    "iter_tsv_triples",
    "read_tsv_triples",
    "write_tsv_triples",
    "read_csv_table",
]

#: The separator the paper uses between field and value in column keys.
DEFAULT_SEPARATOR = "|"


def explode_table(
    table: Mapping[Any, Mapping[str, Any]],
    *,
    separator: str = DEFAULT_SEPARATOR,
    one: Any = 1,
    zero: Any = 0,
    fields: Optional[Sequence[str]] = None,
) -> AssociativeArray:
    """Build the Figure 1 sparse view of a table.

    Parameters
    ----------
    table:
        ``{row_key: {field: value_or_values}}``.  A field value may be a
        single scalar or a list/tuple/set/frozenset of scalars, each of
        which becomes its own ``field|value`` column.
    separator:
        Separator between field name and value in column keys.
    one:
        Stored value denoting presence (the paper uses 1).
    zero:
        The resulting array's zero element.
    fields:
        Optional whitelist of fields to explode (default: all).

    Returns
    -------
    AssociativeArray
        Rows = table row keys; columns = all observed ``field|value``
        strings; entries = ``one``.
    """
    data: Dict[Tuple[Any, str], Any] = {}
    for row_key, record in table.items():
        for field, value in record.items():
            if fields is not None and field not in fields:
                continue
            if separator in field:
                raise KeyError_(
                    f"field name {field!r} contains separator {separator!r}")
            values = value if isinstance(value, (list, tuple, set, frozenset)) \
                else [value]
            for v in values:
                col = f"{field}{separator}{v}"
                data[(row_key, col)] = one
    return AssociativeArray(data, zero=zero)


def collapse_exploded(
    array: AssociativeArray,
    *,
    separator: str = DEFAULT_SEPARATOR,
) -> Dict[Any, Dict[str, List[str]]]:
    """Invert :func:`explode_table` (values come back as strings).

    Returns ``{row_key: {field: [values...]}}`` with values in column-key
    order.  Only stored (nonzero) entries are reported.
    """
    out: Dict[Any, Dict[str, List[str]]] = {}
    for r, c, _v in array.entries():
        if not isinstance(c, str) or separator not in c:
            raise KeyError_(
                f"column key {c!r} is not an exploded '{separator}' key")
        field, _, value = c.partition(separator)
        out.setdefault(r, {}).setdefault(field, []).append(value)
    return out


# ---------------------------------------------------------------------------
# TSV triples (the D4M interchange format)
# ---------------------------------------------------------------------------

#: Number of lines buffered per write in :func:`write_tsv_triples`.
_WRITE_CHUNK = 16384


def write_tsv_triples(
    array: AssociativeArray,
    path: Union[str, Path],
    *,
    value_formatter=str,
) -> None:
    """Write stored entries as ``row<TAB>col<TAB>value`` lines in key order.

    Encoding streams straight off the array's storage backend —
    numeric-backed arrays iterate their lex-sorted columnar form, so no
    dict view is materialised and no Python-side sort runs — and lines
    are flushed in chunks rather than per entry.
    """
    p = Path(path)
    chunk: List[str] = []
    with p.open("w", encoding="utf-8", newline="") as fh:
        for r, c, v in array.entries():
            chunk.append(f"{r}\t{c}\t{value_formatter(v)}\n")
            if len(chunk) >= _WRITE_CHUNK:
                fh.write("".join(chunk))
                chunk.clear()
        if chunk:
            fh.write("".join(chunk))


def iter_tsv_triples(
    path: Union[str, Path],
    *,
    value_parser=None,
):
    """Stream ``row<TAB>col<TAB>value`` lines as ``(row, col, value)``.

    The file is read one line at a time — this is the out-of-core ingest
    path (:mod:`repro.shard` routes these triples to shard files without
    ever holding the whole array in memory).  ``value_parser`` as in
    :func:`read_tsv_triples`.
    """
    parse = value_parser or _parse_scalar
    p = Path(path)
    with p.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise KeyError_(
                    f"{p}:{lineno}: expected 3 tab-separated fields, "
                    f"got {len(parts)}")
            r, c, v = parts
            yield r, c, parse(v)


def read_tsv_triples(
    path: Union[str, Path],
    *,
    value_parser=None,
    zero: Any = 0,
    row_keys: Optional[Iterable[Any]] = None,
    col_keys: Optional[Iterable[Any]] = None,
    backend: str = "auto",
) -> AssociativeArray:
    """Read ``row<TAB>col<TAB>value`` lines into an associative array.

    ``value_parser`` converts the value text (default: int if possible,
    else float if possible, else the raw string).  ``backend`` selects
    the storage backend (``"numeric"`` compiles the columnar form
    eagerly at ingest; see :class:`AssociativeArray`).
    """
    triples: List[Tuple[str, str, Any]] = list(
        iter_tsv_triples(path, value_parser=value_parser))
    return AssociativeArray.from_triples(
        triples, zero=zero, row_keys=row_keys, col_keys=col_keys,
        backend=backend)


def _parse_scalar(text: str) -> Any:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


# ---------------------------------------------------------------------------
# CSV tables
# ---------------------------------------------------------------------------

def read_csv_table(
    source: Union[str, Path, _io.TextIOBase],
    *,
    row_key_column: Optional[str] = None,
    multivalue_separator: str = ";",
) -> Dict[str, Dict[str, Any]]:
    """Read a CSV file into the ``{row: {field: value(s)}}`` shape that
    :func:`explode_table` consumes.

    The first column (or ``row_key_column``) provides row keys.  Cell text
    containing ``multivalue_separator`` becomes a list of values.  Empty
    cells are omitted (they would otherwise explode into ``field|``
    columns).
    """
    close = False
    if isinstance(source, (str, Path)):
        fh: _io.TextIOBase = open(source, "r", encoding="utf-8", newline="")
        close = True
    else:
        fh = source
    try:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise KeyError_("CSV file has no header row")
        key_col = row_key_column or reader.fieldnames[0]
        if key_col not in reader.fieldnames:
            raise KeyError_(f"row key column {key_col!r} not in header")
        table: Dict[str, Dict[str, Any]] = {}
        for record in reader:
            row_key = record[key_col]
            fields: Dict[str, Any] = {}
            for field, cell in record.items():
                if field == key_col or cell is None or cell == "":
                    continue
                if multivalue_separator in cell:
                    fields[field] = [p.strip()
                                     for p in cell.split(multivalue_separator)
                                     if p.strip()]
                else:
                    fields[field] = cell.strip()
            table[row_key] = fields
        return table
    finally:
        if close:
            fh.close()

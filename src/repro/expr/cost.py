"""Cost model: per-node nnz/backend/kernel estimates and memory sizing.

Before the engine runs a plan it walks the DAG once, predicting for
every node

* how many entries the node will store (``nnz``) — leaves report their
  exact count, operators propagate standard sparse estimates (the
  uniform-distribution SpGEMM bound for products, union bounds for
  element-wise ops, exact products for Kronecker);
* which storage backend the result will live on (``numeric`` when the
  operand chain stays on plain numbers and every operation has a ufunc
  form, ``dict`` otherwise) and which multiply kernel applies
  (mirroring :func:`repro.arrays.matmul._pick_kernel`'s policy,
  including the small-operand bailout);
* how many bytes the materialized result (plus any kernel expansion
  buffer) will take.

The estimates drive two real decisions: the executor passes the chosen
kernel to :func:`repro.arrays.matmul.multiply` (validated against the
actual operands at run time — predictions about *values* can be wrong,
e.g. a numeric-zero array holding strings, and the engine then falls
back to the generic path), and fused incidence-to-adjacency nodes whose
estimated working set exceeds the plan's ``memory_budget`` are routed
to the out-of-core :mod:`repro.shard` executor instead of in-memory
evaluation.

The model also *learns*: every product the executor runs reports its
(kernel, multiplicative terms, wall seconds) back through
:func:`record_kernel_sample`, which feeds the process-global metrics
registry (``expr_kernel_seconds{kernel=...}`` and friends on
``/metrics``), a measured seconds-per-term rate, and the persistent
calibration store (:mod:`repro.obs.calibration`).  Later plans then
carry an estimated wall time (:attr:`CostEstimate.seconds`) computed
from observed kernel throughput, not a hardcoded constant — preferring
this process's own samples (``seconds_source == "measured"``) and
falling back to the rates a *previous* process persisted for this
machine fingerprint (``seconds_source == "calibrated"``), so even a
cold interpreter's first ``explain()`` reports wall-time estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arrays.backend import VECTORIZE_MIN_NNZ, usable_numeric_zero
from repro.expr.ast import (
    Elementwise,
    IncidenceToAdjacency,
    Kron,
    Leaf,
    MatMul,
    Node,
    Reduce,
    Select,
    Transpose,
    WithKeys,
    topological_order,
)
from repro.obs.calibration import get_calibration_store
from repro.obs.metrics import get_registry

__all__ = ["CostEstimate", "estimate_plan", "record_kernel_sample",
           "measured_seconds_per_term", "seconds_per_term",
           "NUMERIC_ENTRY_BYTES", "DICT_ENTRY_BYTES"]

#: Bytes per stored entry on the columnar backend (int64 row + int64
#: col + float64 value).
NUMERIC_ENTRY_BYTES = 24

#: Rough bytes per stored entry on the dict backend (key tuple, boxed
#: value, hash-table overhead).
DICT_ENTRY_BYTES = 160


def record_kernel_sample(kernel: str, terms: float, seconds: float) -> None:
    """Feed one executed product back into the measured cost model.

    Called by the executor after every product it runs.  The sample
    lands on the process-global registry — ``expr_kernel_seconds``
    (latency histogram), ``expr_kernel_seconds_total`` and
    ``expr_kernel_terms_total`` (the running rate numerator and
    denominator) — so ``/metrics`` and the seconds-per-term estimate
    read the same numbers, and on the persistent calibration store
    (:mod:`repro.obs.calibration`), so the *next* process's cold plans
    start from this one's measured throughput.
    """
    registry = get_registry()
    registry.histogram(
        "expr_kernel_seconds", "Wall time of one product kernel call",
        kernel=kernel).observe(seconds)
    registry.counter(
        "expr_kernel_seconds_total",
        "Cumulative product-kernel wall seconds", kernel=kernel
    ).inc(seconds)
    registry.counter(
        "expr_kernel_terms_total",
        "Cumulative multiplicative terms executed per kernel",
        kernel=kernel).inc(max(terms, 1.0))
    store = get_calibration_store()
    if store is not None:
        store.record(kernel, max(terms, 1.0), seconds)
        store.maybe_save()


def measured_seconds_per_term(kernel: str) -> Optional[float]:
    """Seconds per multiplicative term observed *in this process* for
    ``kernel``.

    ``None`` until :func:`record_kernel_sample` has seen that kernel in
    this process — the cost model never invents a throughput.  See
    :func:`seconds_per_term` for the variant that also consults the
    persistent calibration store.
    """
    registry = get_registry()
    seconds = registry.counter(
        "expr_kernel_seconds_total",
        "Cumulative product-kernel wall seconds", kernel=kernel).value
    terms = registry.counter(
        "expr_kernel_terms_total",
        "Cumulative multiplicative terms executed per kernel",
        kernel=kernel).value
    if terms <= 0 or seconds <= 0:
        return None
    return seconds / terms


def seconds_per_term(kernel: str) -> Tuple[Optional[float], str]:
    """``(rate, source)`` — the best available seconds-per-term.

    In-process samples win (``source == "measured"``); otherwise the
    persistent calibration store's EWMA for this machine fingerprint
    (``source == "calibrated"``) — that is what lets a fresh
    interpreter plan with real throughput numbers before it has run a
    single product.  ``(None, "")`` when neither exists.
    """
    rate = measured_seconds_per_term(kernel)
    if rate is not None:
        return rate, "measured"
    store = get_calibration_store()
    if store is not None:
        stored = store.rate(kernel)
        if stored is not None:
            return stored, "calibrated"
    return None, ""


@dataclass(frozen=True)
class CostEstimate:
    """Predicted execution profile of one node."""

    rows: int
    cols: int
    nnz: float
    backend: str                 # "numeric" | "dict"
    kernel: str = "-"            # multiply kernel, "-" for non-products
    flops: float = 0.0           # multiplicative terms for products
    exact: bool = False          # True only for leaves
    #: Predicted wall seconds from observed kernel throughput; ``None``
    #: until the kernel has a rate from this process or the
    #: calibration store.
    seconds: Optional[float] = None
    #: Where the rate behind :attr:`seconds` came from: ``"measured"``
    #: (this process), ``"calibrated"`` (the persistent store), or
    #: ``""`` (no rate known).
    seconds_source: str = ""

    @property
    def bytes(self) -> float:
        """Estimated bytes of the materialized result."""
        per = NUMERIC_ENTRY_BYTES if self.backend == "numeric" \
            else DICT_ENTRY_BYTES
        return self.nnz * per

    @property
    def working_bytes(self) -> float:
        """Result bytes plus any kernel expansion buffer.

        The expansion-based ``sortmerge`` and ``reduceat`` kernels
        materialize every multiplicative term before the group-reduce,
        so their working set is proportional to the flop count, not the
        output size.
        """
        extra = 0.0
        if self.kernel in ("sortmerge", "reduceat"):
            extra = self.flops * NUMERIC_ENTRY_BYTES
        return self.bytes + extra


def _leaf_numeric(leaf: Leaf) -> bool:
    """Whether a leaf is predicted to drive the numeric fast paths.

    Conservative on pins and exotic zeros; optimistic about stored
    values (checking them would cost a full scan — the executor's
    runtime validation catches the optimism).
    """
    array = leaf.array
    if array.backend == "numeric":
        return True
    return not array.pinned and usable_numeric_zero(array.zero)


def _product_kernel(node, a_est: CostEstimate, b_est: CostEstimate,
                    numeric: bool, inner: float) -> str:
    """Mirror of the eager auto-kernel policy, on estimates.

    Same preference order as :func:`repro.arrays.matmul._pick_kernel`
    (``scipy`` for genuine ``+.×``, ``sortmerge`` for every other ufunc
    pair, ``generic`` otherwise), including the calibrated refinement
    of the tiny-operand bailout: when the calibration store has
    measured seconds-per-term for both contenders, predicted wall time
    decides instead of the static nnz threshold.
    """
    from repro.arrays.matmul import (
        calibrated_tiny_pick,
        preferred_vector_kernel,
    )
    pair = node.op_pair
    if not numeric or not (pair.has_ufuncs and pair.is_numeric):
        return "generic"
    candidate = preferred_vector_kernel(pair, node.mode)
    native = a_est.backend == "numeric" and b_est.backend == "numeric"
    small = (a_est.nnz + b_est.nnz < VECTORIZE_MIN_NNZ
             and a_est.rows * b_est.cols < 4096)
    if not native and small and a_est.exact and b_est.exact:
        pick = calibrated_tiny_pick(candidate, a_est.nnz, b_est.nnz, inner)
        return candidate if pick == candidate else "generic"
    return candidate


def _estimate(node: Node, memo: Dict[int, CostEstimate]) -> CostEstimate:
    if isinstance(node, Leaf):
        rows, cols = node.shape
        backend = "numeric" if _leaf_numeric(node) else "dict"
        return CostEstimate(rows, cols, float(node.array.nnz), backend,
                            exact=True)

    child_ests = [memo[id(c)] for c in node.children]

    if isinstance(node, Transpose):
        (ce,) = child_ests
        return CostEstimate(ce.cols, ce.rows, ce.nnz, ce.backend)

    if isinstance(node, (MatMul, IncidenceToAdjacency)):
        a, b = child_ests
        if isinstance(node, IncidenceToAdjacency):
            # Eᵀ·F: the contraction runs over E's *rows* (the edges).
            inner = max(a.rows, 1)
            rows, cols = a.cols, b.cols
        else:
            inner = max(a.cols, 1)
            rows, cols = a.rows, b.cols
        # Uniform-distribution SpGEMM estimate: each of a's entries
        # meets nnz_b/inner partners on the shared inner key.
        flops = a.nnz * b.nnz / inner
        nnz = min(float(rows * cols), flops) if node.mode == "sparse" \
            else min(float(rows * cols), max(flops, 1.0))
        numeric = a.backend == "numeric" and b.backend == "numeric"
        kernel = _product_kernel(node, a, b, numeric, float(inner))
        backend = "numeric" if kernel != "generic" else \
            ("numeric" if numeric else "dict")
        rate, source = seconds_per_term(kernel)
        return CostEstimate(rows, cols, nnz, backend, kernel=kernel,
                            flops=flops,
                            seconds=None if rate is None else flops * rate,
                            seconds_source=source)

    if isinstance(node, Elementwise):
        a, b = child_ests
        nnz = min(float(a.rows * a.cols), a.nnz + b.nnz)
        numeric = (a.backend == "numeric" and b.backend == "numeric"
                   and node.op.ufunc is not None
                   and usable_numeric_zero(node.result_zero))
        return CostEstimate(a.rows, a.cols, nnz,
                            "numeric" if numeric else "dict")

    if isinstance(node, Reduce):
        (ce,) = child_ests
        rows, cols = node.shape
        nnz = min(ce.nnz, float(rows if node.axis == "rows" else cols))
        numeric = (ce.backend == "numeric" and node.op.ufunc is not None
                   and usable_numeric_zero(node.op.identity))
        return CostEstimate(rows, cols, nnz,
                            "numeric" if numeric else "dict")

    if isinstance(node, Select):
        (ce,) = child_ests
        rows, cols = node.shape
        frac = 1.0
        if ce.rows and ce.cols:
            frac = (rows / ce.rows) * (cols / ce.cols)
        return CostEstimate(rows, cols, ce.nnz * frac, ce.backend)

    if isinstance(node, WithKeys):
        (ce,) = child_ests
        rows, cols = node.shape
        return CostEstimate(rows, cols, ce.nnz, ce.backend)

    if isinstance(node, Kron):
        a, b = child_ests
        rows, cols = node.shape
        numeric = (a.backend == "numeric" and b.backend == "numeric"
                   and node.op.ufunc is not None
                   and usable_numeric_zero(node.result_zero))
        return CostEstimate(rows, cols, a.nnz * b.nnz,
                            "numeric" if numeric else "dict")

    raise AssertionError(f"unhandled node kind {node.kind!r}")


def estimate_plan(root: Node) -> Dict[int, CostEstimate]:
    """Cost estimates for every node of the DAG, keyed by ``id(node)``."""
    memo: Dict[int, CostEstimate] = {}
    for node in topological_order(root):
        if id(node) not in memo:
            memo[id(node)] = _estimate(node, memo)
    return memo

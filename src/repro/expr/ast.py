"""Lazy expression DAGs over associative arrays.

The paper builds adjacency arrays as *algebraic expressions* over
incidence arrays (``A = Eoutᵀ ⊕.⊗ Ein``), and GraphBLAS' nonblocking
execution model captures such expressions as DAGs so an optimizer can
fuse operators before anything is materialized.  This module is the DAG:
each :class:`Node` describes one operator application — array
multiplication, element-wise ``⊕``/``⊗``, transpose, row/column
reductions, selection, re-embedding, Kronecker product — plus the fused
:class:`IncidenceToAdjacency` form the optimizer introduces.

Nothing here evaluates.  Nodes know their *key sets* and *zero* (derived
structurally from their children, without touching any stored entry), so
conformability errors surface at expression-construction time with the
same messages the eager API gives, and the cost model can reason about
shapes before execution.  Evaluation and optimization live in
:mod:`repro.expr.execute` and :mod:`repro.expr.rewrite`.

:class:`LazyArray` is the user-facing wrapper: ``lazy(A)`` lifts an
:class:`~repro.arrays.associative.AssociativeArray` into the expression
world, fluent methods mirror the eager spellings (``matmul``, ``add``,
``transpose``/``T``, ``reduce_rows`` ...), and ``evaluate()`` /
``explain()`` hand the DAG to the engine.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.arrays.associative import AssociativeArray
from repro.arrays.keys import KeySet, Selector
from repro.values.equality import values_equal
from repro.values.operations import BinaryOp
from repro.values.semiring import OpPair

__all__ = [
    "ExprError",
    "Node",
    "Leaf",
    "Transpose",
    "MatMul",
    "Elementwise",
    "Reduce",
    "Select",
    "WithKeys",
    "Kron",
    "IncidenceToAdjacency",
    "LazyArray",
    "lazy",
    "REDUCE_KEY",
    "topological_order",
]


class ExprError(ValueError):
    """Raised for malformed expressions (non-conformable operands etc.)."""


#: The collapsed key a :class:`Reduce` node folds a whole axis into.
REDUCE_KEY = "⊕"


class Node:
    """One operator application in a lazy expression DAG.

    Subclasses store their operands in :attr:`children` plus whatever
    operator metadata they need.  Key sets and the zero are derived
    lazily (and cached) from the children; :meth:`signature` is the
    structural identity used by common-subexpression elimination.
    """

    __slots__ = ("children", "_keys", "_sig")

    #: Short operator tag used in plan rendering, e.g. ``"matmul"``.
    kind = "?"

    def __init__(self, *children: "Node") -> None:
        self.children = tuple(children)
        self._keys: Optional[Tuple[KeySet, KeySet]] = None
        self._sig: Optional[Tuple] = None

    # -- structure ------------------------------------------------------------
    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        raise NotImplementedError

    @property
    def row_keys(self) -> KeySet:
        if self._keys is None:
            self._keys = self._compute_keys()
        return self._keys[0]

    @property
    def col_keys(self) -> KeySet:
        if self._keys is None:
            self._keys = self._compute_keys()
        return self._keys[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.row_keys), len(self.col_keys))

    @property
    def zero(self) -> Any:
        raise NotImplementedError

    def signature(self) -> Tuple:
        """Hashable structural identity (same signature ⇒ same value)."""
        if self._sig is None:
            self._sig = self._compute_signature()
        return self._sig

    def _compute_signature(self) -> Tuple:
        raise NotImplementedError

    def replace_children(self, children: Tuple["Node", ...]) -> "Node":
        """A copy of this node over different operands."""
        raise NotImplementedError

    def label(self) -> str:
        """One-line operator description for plans and rewrite logs."""
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.label()} shape={self.shape}>"


def _op_sig(op: BinaryOp) -> Tuple:
    """Structural identity of an operation (name alone is not enough —
    user ops may reuse a name over a different callable)."""
    return (op.name, id(op.func))


class Leaf(Node):
    """A concrete :class:`AssociativeArray` at the bottom of the DAG."""

    __slots__ = ("array", "name")
    kind = "leaf"

    def __init__(self, array: AssociativeArray,
                 name: Optional[str] = None) -> None:
        if not isinstance(array, AssociativeArray):
            raise ExprError(
                f"lazy() wraps AssociativeArray, got {type(array).__name__}")
        super().__init__()
        self.array = array
        self.name = name

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        return (self.array.row_keys, self.array.col_keys)

    @property
    def zero(self) -> Any:
        return self.array.zero

    def _compute_signature(self) -> Tuple:
        return ("leaf", id(self.array))

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return self

    def label(self) -> str:
        name = self.name or "array"
        return f"leaf {name!r}"


class Transpose(Node):
    """Definition I.2: swap the key sets."""

    __slots__ = ()
    kind = "transpose"

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        child = self.children[0]
        return (child.col_keys, child.row_keys)

    @property
    def zero(self) -> Any:
        return self.children[0].zero

    def _compute_signature(self) -> Tuple:
        return ("transpose", self.children[0].signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return Transpose(*children)


class MatMul(Node):
    """Array multiplication ``a ⊕.⊗ b`` (Definition I.3)."""

    __slots__ = ("op_pair", "mode")
    kind = "matmul"

    def __init__(self, a: Node, b: Node, op_pair: OpPair,
                 mode: str = "sparse") -> None:
        if mode not in ("sparse", "dense"):
            raise ExprError(f"unknown mode {mode!r}; use 'sparse' or 'dense'")
        if a.col_keys != b.row_keys:
            raise ExprError(
                "inner key sets differ: left operand has columns "
                f"{tuple(a.col_keys)[:4]}..., right has rows "
                f"{tuple(b.row_keys)[:4]}...; Definition I.3 requires a "
                "shared K3 — re-embed with with_keys() first")
        super().__init__(a, b)
        self.op_pair = op_pair
        self.mode = mode

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        a, b = self.children
        return (a.row_keys, b.col_keys)

    @property
    def zero(self) -> Any:
        return self.op_pair.zero

    def _compute_signature(self) -> Tuple:
        a, b = self.children
        return ("matmul", self.op_pair.name, self.mode,
                a.signature(), b.signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return MatMul(children[0], children[1], self.op_pair, self.mode)

    def label(self) -> str:
        suffix = " (dense)" if self.mode == "dense" else ""
        return f"matmul[{self.op_pair.display}]{suffix}"


class Elementwise(Node):
    """Element-wise ``op`` over the union pattern (aligned key sets)."""

    __slots__ = ("op", "result_zero", "role")
    kind = "elementwise"

    def __init__(self, a: Node, b: Node, op: BinaryOp, *,
                 zero: Any = None, role: str = "⊕") -> None:
        if a.row_keys != b.row_keys or a.col_keys != b.col_keys:
            raise ExprError(
                "element-wise operations require identical key sets; "
                "re-embed with with_keys() over the key-set unions first")
        super().__init__(a, b)
        self.op = op
        self.result_zero = a.zero if zero is None else zero
        self.role = role
        background = op(a.zero, b.zero)
        if not values_equal(background, self.result_zero):
            raise ExprError(
                f"op({a.zero!r}, {b.zero!r}) = {background!r} ≠ "
                f"{self.result_zero!r}: result would be dense; element-wise "
                "evaluation refused")

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        a = self.children[0]
        return (a.row_keys, a.col_keys)

    @property
    def zero(self) -> Any:
        return self.result_zero

    def _compute_signature(self) -> Tuple:
        a, b = self.children
        return ("elementwise", _op_sig(self.op), repr(self.result_zero),
                a.signature(), b.signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return Elementwise(children[0], children[1], self.op,
                           zero=self.result_zero, role=self.role)

    def label(self) -> str:
        return f"ewise{self.role}[{self.op.name}]"


class Reduce(Node):
    """Fold one axis with ``op`` (D4M's ``sum(A, dim)`` generalized).

    ``axis="rows"`` folds each row over its columns (an m×1 result with
    the single column key :data:`REDUCE_KEY`); ``axis="cols"`` folds each
    column over its rows (1×n).  Rows/columns with no stored entries are
    omitted, matching :func:`repro.arrays.reductions.reduce_rows`.
    """

    __slots__ = ("op", "axis")
    kind = "reduce"

    def __init__(self, child: Node, op: BinaryOp, axis: str) -> None:
        if axis not in ("rows", "cols"):
            raise ExprError(f"unknown reduce axis {axis!r}; use 'rows' or "
                            "'cols'")
        super().__init__(child)
        self.op = op
        self.axis = axis

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        child = self.children[0]
        if self.axis == "rows":
            return (child.row_keys, KeySet([REDUCE_KEY]))
        return (KeySet([REDUCE_KEY]), child.col_keys)

    @property
    def zero(self) -> Any:
        return self.children[0].zero

    def _compute_signature(self) -> Tuple:
        return ("reduce", self.axis, _op_sig(self.op),
                self.children[0].signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return Reduce(children[0], self.op, self.axis)

    def label(self) -> str:
        return f"reduce_{self.axis}[{self.op.name}]"


class Select(Node):
    """Sub-array on selected keys (Figure 1 selection semantics)."""

    __slots__ = ("row_selector", "col_selector")
    kind = "select"

    def __init__(self, child: Node, row_selector: Selector,
                 col_selector: Selector) -> None:
        super().__init__(child)
        self.row_selector = row_selector
        self.col_selector = col_selector

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        child = self.children[0]
        return (child.row_keys.select(self.row_selector),
                child.col_keys.select(self.col_selector))

    @property
    def zero(self) -> Any:
        return self.children[0].zero

    def _compute_signature(self) -> Tuple:
        return ("select", repr(self.row_selector), repr(self.col_selector),
                self.children[0].signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return Select(children[0], self.row_selector, self.col_selector)

    def label(self) -> str:
        return (f"select[{self.row_selector!r}, {self.col_selector!r}]")


class WithKeys(Node):
    """Re-embedding into (super)key sets."""

    __slots__ = ("new_row_keys", "new_col_keys")
    kind = "with_keys"

    def __init__(self, child: Node,
                 row_keys: Union[KeySet, Iterable[Any], None] = None,
                 col_keys: Union[KeySet, Iterable[Any], None] = None) -> None:
        super().__init__(child)
        self.new_row_keys = (child.row_keys if row_keys is None
                             else KeySet.coerce(row_keys))
        self.new_col_keys = (child.col_keys if col_keys is None
                             else KeySet.coerce(col_keys))

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        return (self.new_row_keys, self.new_col_keys)

    @property
    def zero(self) -> Any:
        return self.children[0].zero

    def _compute_signature(self) -> Tuple:
        # KeySet objects, not expanded tuples: KeySet hashes are
        # memoised, so ancestors re-hashing this signature pay O(1)
        # instead of re-walking |V| keys.
        return ("with_keys", self.new_row_keys, self.new_col_keys,
                self.children[0].signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return WithKeys(children[0], self.new_row_keys, self.new_col_keys)


class Kron(Node):
    """Kronecker product over ``mul`` with string-paired keys."""

    __slots__ = ("op", "result_zero")
    kind = "kron"

    def __init__(self, a: Node, b: Node, mul: BinaryOp, *,
                 zero: Any = None) -> None:
        super().__init__(a, b)
        self.op = mul
        self.result_zero = a.zero if zero is None else zero

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        from repro.arrays.kron import pair_key
        a, b = self.children
        rows = KeySet([pair_key(ra, rb)
                       for ra in a.row_keys for rb in b.row_keys])
        cols = KeySet([pair_key(ca, cb)
                       for ca in a.col_keys for cb in b.col_keys])
        return (rows, cols)

    @property
    def shape(self) -> Tuple[int, int]:
        # Avoid materializing the paired key sets just for a size.
        a, b = self.children
        return (a.shape[0] * b.shape[0], a.shape[1] * b.shape[1])

    @property
    def zero(self) -> Any:
        return self.result_zero

    def _compute_signature(self) -> Tuple:
        a, b = self.children
        return ("kron", _op_sig(self.op), repr(self.result_zero),
                a.signature(), b.signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return Kron(children[0], children[1], self.op, zero=self.result_zero)

    def label(self) -> str:
        return f"kron[{self.op.name}]"


class IncidenceToAdjacency(Node):
    """The fused form of ``transpose(E) ⊕.⊗ F`` — the paper's
    ``A = Eoutᵀ ⊕.⊗ Ein`` as a single kernel with no materialized
    transpose.

    Only the optimizer introduces this node (via the
    ``fuse_incidence_adjacency`` rewrite); the execution engine runs it
    off ``E``'s cached CSC — which *is* ``Eᵀ``'s CSR — or, for plans
    whose estimated intermediates exceed the memory budget, routes it
    through the out-of-core :mod:`repro.shard` executor.
    """

    __slots__ = ("op_pair", "mode")
    kind = "incidence_to_adjacency"

    def __init__(self, e: Node, f: Node, op_pair: OpPair,
                 mode: str = "sparse") -> None:
        if e.row_keys != f.row_keys:
            raise ExprError(
                "Eout and Ein must share the edge key set K as rows; "
                "re-embed with with_keys() over the union first")
        super().__init__(e, f)
        self.op_pair = op_pair
        self.mode = mode

    def _compute_keys(self) -> Tuple[KeySet, KeySet]:
        e, f = self.children
        return (e.col_keys, f.col_keys)

    @property
    def zero(self) -> Any:
        return self.op_pair.zero

    def _compute_signature(self) -> Tuple:
        e, f = self.children
        return ("incidence_to_adjacency", self.op_pair.name, self.mode,
                e.signature(), f.signature())

    def replace_children(self, children: Tuple[Node, ...]) -> Node:
        return IncidenceToAdjacency(children[0], children[1], self.op_pair,
                                    self.mode)

    def label(self) -> str:
        return f"incidence_to_adjacency[{self.op_pair.display}]"


def topological_order(root: Node) -> Tuple[Node, ...]:
    """Children-before-parents order over the DAG (shared nodes once).

    Iterative, so a 256-hop query chain cannot hit the recursion limit.
    """
    order = []
    seen = set()
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in reversed(node.children):
            stack.append((child, False))
    return tuple(order)


class LazyArray:
    """Fluent wrapper turning method chains into expression DAGs.

    >>> from repro.expr import lazy
    >>> from repro.values.semiring import get_op_pair
    >>> expr = lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"),
    ...                                    get_op_pair("plus_times"))
    ... # doctest: +SKIP
    >>> adjacency = expr.evaluate()          # doctest: +SKIP
    >>> print(expr.explain())                # doctest: +SKIP
    """

    __slots__ = ("node",)

    def __init__(self, node: Node) -> None:
        self.node = node

    # -- construction helpers -------------------------------------------------
    @staticmethod
    def _as_node(other: Union["LazyArray", AssociativeArray, Node]) -> Node:
        if isinstance(other, LazyArray):
            return other.node
        if isinstance(other, Node):
            return other
        return Leaf(other)

    # -- operator vocabulary --------------------------------------------------
    def matmul(self, other, op_pair: OpPair, *,
               mode: str = "sparse") -> "LazyArray":
        """Lazy ``self ⊕.⊗ other`` (Definition I.3)."""
        return LazyArray(MatMul(self.node, self._as_node(other), op_pair,
                                mode))

    dot = matmul

    def add(self, other, op: BinaryOp, *, zero: Any = None) -> "LazyArray":
        """Lazy element-wise ``⊕`` over the union pattern."""
        return LazyArray(Elementwise(self.node, self._as_node(other), op,
                                     zero=zero, role="⊕"))

    def multiply_elementwise(self, other, op: BinaryOp, *,
                             zero: Any = None) -> "LazyArray":
        """Lazy element-wise ``⊗`` over the union pattern."""
        return LazyArray(Elementwise(self.node, self._as_node(other), op,
                                     zero=zero, role="⊗"))

    def transpose(self) -> "LazyArray":
        """Lazy transpose."""
        return LazyArray(Transpose(self.node))

    @property
    def T(self) -> "LazyArray":
        """Alias for :meth:`transpose`."""
        return self.transpose()

    def reduce_rows(self, op: BinaryOp) -> "LazyArray":
        """Lazy per-row fold (an m×1 result keyed ``'⊕'``)."""
        return LazyArray(Reduce(self.node, op, "rows"))

    def reduce_cols(self, op: BinaryOp) -> "LazyArray":
        """Lazy per-column fold (a 1×n result keyed ``'⊕'``)."""
        return LazyArray(Reduce(self.node, op, "cols"))

    def select(self, row_selector: Selector,
               col_selector: Selector) -> "LazyArray":
        """Lazy sub-array selection."""
        return LazyArray(Select(self.node, row_selector, col_selector))

    def with_keys(self, row_keys=None, col_keys=None) -> "LazyArray":
        """Lazy re-embedding into (super)key sets."""
        return LazyArray(WithKeys(self.node, row_keys, col_keys))

    def kron(self, other, mul: BinaryOp, *, zero: Any = None) -> "LazyArray":
        """Lazy Kronecker product."""
        return LazyArray(Kron(self.node, self._as_node(other), mul,
                              zero=zero))

    # -- structure ------------------------------------------------------------
    @property
    def row_keys(self) -> KeySet:
        return self.node.row_keys

    @property
    def col_keys(self) -> KeySet:
        return self.node.col_keys

    @property
    def shape(self) -> Tuple[int, int]:
        return self.node.shape

    @property
    def zero(self) -> Any:
        return self.node.zero

    # -- engine entry points --------------------------------------------------
    def evaluate(self, **options: Any) -> AssociativeArray:
        """Optimize and execute; see :func:`repro.expr.execute.evaluate`."""
        from repro.expr.execute import evaluate
        return evaluate(self, **options)

    def explain(self, **options: Any) -> str:
        """The optimized plan transcript without executing."""
        from repro.expr.execute import explain
        return explain(self, **options)

    def plan(self, **options: Any):
        """The optimized :class:`~repro.expr.execute.Plan` object."""
        from repro.expr.execute import plan
        return plan(self, **options)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LazyArray({self.node.label()}, shape={self.shape})"


def lazy(array: Union[AssociativeArray, LazyArray, Node],
         name: Optional[str] = None) -> LazyArray:
    """Lift an array (or existing node) into the lazy expression world."""
    if isinstance(array, LazyArray):
        return array
    if isinstance(array, Node):
        return LazyArray(array)
    return LazyArray(Leaf(array, name))

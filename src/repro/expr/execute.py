"""Plan and execute lazy expression DAGs.

:func:`plan` runs the full optimizer front-end — certification-gated
rewrites (:mod:`repro.expr.rewrite`), then the cost model
(:mod:`repro.expr.cost`) — and returns a :class:`Plan`: the optimized
DAG, every applied/refused rewrite with the property evidence that
decided it, per-node cost annotations, and the nodes routed to the
out-of-core shard executor.  :func:`evaluate` executes a plan;
:func:`explain` renders its transcript without executing.

Execution is a memoised post-order walk: shared nodes (k-hop chains
after common-subexpression elimination, reused sub-queries) evaluate
once.  Products honour the cost model's kernel choice, validated
against the actual operands at run time; fused
:class:`~repro.expr.ast.IncidenceToAdjacency` nodes run off the left
operand's cached CSC — which *is* the transpose's CSR — so no
transposed array is ever materialized, with a generic fused loop for
exotic value sets and a :class:`~repro.shard.plan.ShardedAdjacencyPlan`
fallback for plans whose estimated working set exceeds the memory
budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.elementwise import elementwise_apply, vectorizable_operands
from repro.arrays.kron import kron
from repro.arrays.matmul import multiply
from repro.arrays.reductions import reduce_cols, reduce_rows
from repro.expr.ast import (
    Elementwise,
    ExprError,
    IncidenceToAdjacency,
    Kron,
    LazyArray,
    Leaf,
    MatMul,
    Node,
    REDUCE_KEY,
    Reduce,
    Select,
    Transpose,
    WithKeys,
    lazy,
    topological_order,
)
from repro.expr.cost import (
    CostEstimate,
    estimate_plan,
    record_kernel_sample,
)
from repro.obs.events import emit_event
from repro.obs.metrics import get_registry
from repro.obs.trace import span
from repro.expr.rewrite import (
    AppliedRewrite,
    DEFAULT_RULES,
    PropertyGate,
    RefusedRewrite,
    optimize,
)
from repro.values.equality import values_equal
from repro.values.properties import DEFAULT_SAMPLES
from repro.values.semiring import OpPair

__all__ = ["Plan", "plan", "evaluate", "explain", "vecmat", "khop_frontier"]

#: Row key of the 1×n vector arrays :func:`vecmat` builds.
_VEC_KEY = "·"


@dataclass
class Plan:
    """An optimized, costed, ready-to-run expression plan."""

    root: Node
    source: Node
    applied: List[AppliedRewrite]
    refused: List[RefusedRewrite]
    estimates: Dict[int, CostEstimate]
    shard_nodes: Tuple[int, ...] = ()
    memory_budget: Optional[int] = None
    options: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(topological_order(self.root))

    @property
    def peak_bytes(self) -> float:
        """Largest estimated working set of any operator node."""
        peak = 0.0
        for node in topological_order(self.root):
            if isinstance(node, Leaf):
                continue
            est = self.estimates.get(id(node))
            if est is not None:
                peak = max(peak, est.working_bytes)
        return peak

    def execute(self) -> AssociativeArray:
        """Run the plan (memoised over shared nodes)."""
        return _Executor(self).run()

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """The human-readable plan transcript.

        Names each applied rewrite together with the verified algebraic
        properties that licensed it, lists the rewrites the gate
        refused, and renders the operator tree with per-node cost
        annotations (estimated nnz, storage backend, kernel, bytes).
        """
        lines: List[str] = []
        root_est = self.estimates.get(id(self.root))
        head = f"plan: {self.root.label()}"
        if root_est is not None:
            head += (f"  →  ~{_fmt_count(root_est.nnz)} entries "
                     f"({root_est.backend})")
        lines.append(head)
        lines.append(f"nodes: {self.node_count}   peak working set: "
                     f"~{_fmt_bytes(self.peak_bytes)}"
                     + (f"   memory budget: "
                        f"{_fmt_bytes(self.memory_budget)}"
                        if self.memory_budget is not None else ""))
        if self.applied:
            lines.append("applied rewrites:")
            for i, rw in enumerate(self.applied, 1):
                lines.append(f"  {i}. {rw.rule} @ {rw.site}: "
                             f"{rw.description}")
                if rw.properties:
                    lines.append("     licensed by:")
                    for prop in rw.properties:
                        lines.append(f"       - {prop}")
                else:
                    lines.append("     licensed by: structural identity "
                                 "(no algebraic properties required)")
        else:
            lines.append("applied rewrites: none")
        if self.refused:
            lines.append("refused rewrites (properties not certified):")
            for rf in self.refused:
                lines.append(f"  - {rf.rule} @ {rf.site}: {rf.reason}")
        lines.append("operator tree (est. nnz / backend / kernel):")
        tree_lines, products = self._render_tree()
        lines.extend(tree_lines)
        lines.extend(self._render_kernel_routing(products))
        return "\n".join(lines)

    def _render_kernel_routing(
        self, products: List[Tuple[int, Node]],
    ) -> List[str]:
        """One audit line per product node: the chosen kernel, the
        op-pair it serves, the estimated term count, and the
        seconds-per-term rate (with its measured/calibrated provenance)
        the estimate was priced with."""
        if not products:
            return []
        lines = ["kernel routing (product nodes):"]
        for num, node in products:
            est = self.estimates.get(id(node))
            if est is None:
                continue
            pair = getattr(node, "op_pair", None)
            line = (f"  #{num} [{pair.name if pair is not None else '-'}] "
                    f"kernel={est.kernel}  terms≈{_fmt_count(est.flops)}")
            if est.seconds is not None and est.flops > 0:
                rate = est.seconds / est.flops
                line += (f"  {rate * 1e9:.1f} ns/term "
                         f"({est.seconds_source or 'measured'})")
            else:
                line += "  (no measured/calibrated rate yet)"
            lines.append(line)
        return lines

    def _render_tree(self) -> Tuple[List[str], List[Tuple[int, Node]]]:
        lines: List[str] = []
        products: List[Tuple[int, Node]] = []
        seen: Dict[int, int] = {}

        def annotate(node: Node) -> str:
            est = self.estimates.get(id(node))
            parts = [node.label()]
            if isinstance(node, Leaf):
                parts.append(f"{node.shape[0]}×{node.shape[1]}")
                parts.append(f"nnz={node.array.nnz}")
                parts.append(node.array.backend)
            elif est is not None:
                parts.append(f"{est.rows}×{est.cols}")
                parts.append(f"est_nnz≈{_fmt_count(est.nnz)}")
                parts.append(est.backend)
                if est.kernel != "-":
                    parts.append(f"kernel={est.kernel}")
                parts.append(f"~{_fmt_bytes(est.working_bytes)}")
                if est.seconds is not None:
                    parts.append(f"~{est.seconds * 1e3:.2f} ms "
                                 f"{est.seconds_source or 'measured'}")
            if id(node) in self.shard_nodes:
                parts.append("→ shard executor (over budget)")
            return "  ".join(parts)

        # Explicit stack (a deep hop chain must render without hitting
        # the recursion limit); entries are (node, prefix, tail, top).
        stack = [(self.root, "", True, True)]
        while stack:
            node, prefix, tail, top = stack.pop()
            connector = "" if top else ("└─ " if tail else "├─ ")
            ref = seen.get(id(node))
            if ref is not None:
                lines.append(f"{prefix}{connector}(shared node #{ref})")
                continue
            seen[id(node)] = len(seen) + 1
            if isinstance(node, (MatMul, IncidenceToAdjacency)):
                products.append((seen[id(node)], node))
            lines.append(f"{prefix}{connector}#{seen[id(node)]} "
                         f"{annotate(node)}")
            child_prefix = prefix + ("" if top else
                                     ("   " if tail else "│  "))
            for i, child in reversed(list(enumerate(node.children))):
                stack.append((child, child_prefix,
                              i == len(node.children) - 1, False))
        return lines, products


def _fmt_count(x: float) -> str:
    if x >= 1e6:
        return f"{x / 1e6:.1f}M"
    if x >= 1e3:
        return f"{x / 1e3:.1f}k"
    return f"{x:.0f}"


def _fmt_bytes(x: Optional[float]) -> str:
    if x is None:
        return "∞"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if x < 1024 or unit == "GiB":
            return f"{x:.1f} {unit}" if unit != "B" else f"{x:.0f} B"
        x /= 1024
    return f"{x:.1f} GiB"  # pragma: no cover - unreachable


def plan(
    expr: Any,
    *,
    optimize_plan: bool = True,
    samples: int = DEFAULT_SAMPLES,
    seed: int = 0xD4,
    memory_budget: Optional[int] = None,
    shard_options: Optional[Dict[str, Any]] = None,
) -> Plan:
    """Optimize and cost ``expr`` (a :class:`LazyArray`, node, or array).

    ``optimize_plan=False`` skips the rewrite pipeline (the eager
    evaluation order, node for node) but still costs the DAG.
    ``memory_budget`` (bytes) routes fused incidence-to-adjacency nodes
    whose estimated working set exceeds it through the out-of-core
    shard executor; ``shard_options`` are extra
    :class:`~repro.shard.plan.ShardedAdjacencyPlan` keywords for that
    path.
    """
    started = time.perf_counter()
    source = lazy(expr).node
    root = source
    # Force key-set derivation bottom-up (it is lazy and recursive per
    # node): after this, no later access can descend a long unary
    # chain.  Kron nodes are skipped — their paired key sets are
    # quadratic to build and only needed at execution.
    for n in topological_order(root):
        if n.kind != "kron":
            n.row_keys
            n.col_keys
    gate = PropertyGate(samples=samples, seed=seed)
    applied: List[AppliedRewrite] = []
    refused: List[RefusedRewrite] = []
    with span("expr.plan", optimize=optimize_plan) as sp:
        if optimize_plan:
            root, applied, refused = optimize(root, gate,
                                              rules=DEFAULT_RULES)
        estimates = estimate_plan(root)
        sp.set_attr("applied", len(applied))
        sp.set_attr("refused", len(refused))
    registry = get_registry()
    registry.counter("expr_plans_total", "Expression plans built").inc()
    registry.histogram(
        "expr_plan_seconds", "Wall time of plan() (rewrites + costing)"
    ).observe(time.perf_counter() - started)
    shard_nodes: List[int] = []
    if memory_budget is not None:
        for node in topological_order(root):
            if not isinstance(node, IncidenceToAdjacency):
                continue
            est = estimates[id(node)]
            if est.working_bytes <= memory_budget:
                continue
            # Out-of-core construction re-partitions the edge fold, so
            # it needs the same license as the shard engine proper.
            ok_crit, _ = gate.criteria(node.op_pair)
            ok_add, _ = gate.add_associative_commutative(node.op_pair)
            if ok_crit and ok_add:
                shard_nodes.append(id(node))
    return Plan(root=root, source=source, applied=applied,
                refused=refused, estimates=estimates,
                shard_nodes=tuple(shard_nodes),
                memory_budget=memory_budget,
                options=dict(shard_options or {}))


def evaluate(expr: Any, *, optimize: bool = True, **options: Any
             ) -> AssociativeArray:
    """Optimize, cost, and execute ``expr``; returns the result array.

    Keyword options are forwarded to :func:`plan` (``samples``,
    ``seed``, ``memory_budget``, ``shard_options``).
    """
    if isinstance(expr, Plan):
        return expr.execute()
    return plan(expr, optimize_plan=optimize, **options).execute()


def explain(expr: Any, *, optimize: bool = True, **options: Any) -> str:
    """The optimized plan transcript for ``expr`` without executing."""
    if isinstance(expr, Plan):
        return expr.explain()
    return plan(expr, optimize_plan=optimize, **options).explain()


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

class _Executor:
    """Memoised post-order evaluation of a costed plan."""

    def __init__(self, the_plan: Plan) -> None:
        self.plan = the_plan
        self.results: Dict[int, AssociativeArray] = {}
        self._node_seconds = get_registry().histogram(
            "expr_node_seconds", "Wall time of one operator-node "
            "evaluation (memoised nodes run once)")

    def run(self) -> AssociativeArray:
        order = topological_order(self.plan.root)
        with span("expr.execute", nodes=len(order)):
            for node in order:
                if id(node) not in self.results:
                    self.results[id(node)] = self._execute(node)
        return self.results[id(self.plan.root)]

    def _execute(self, node: Node) -> AssociativeArray:
        if isinstance(node, Leaf):
            return node.array
        with span(f"node.{node.kind}") as sp:
            started = time.perf_counter()
            result = self._execute_operator(node)
            self._node_seconds.observe(time.perf_counter() - started)
            sp.set_attr("nnz", result.nnz)
        return result

    def _execute_operator(self, node: Node) -> AssociativeArray:
        children = [self.results[id(c)] for c in node.children]
        if isinstance(node, Transpose):
            return children[0].transpose()
        if isinstance(node, MatMul):
            return self._matmul(node, children[0], children[1])
        if isinstance(node, IncidenceToAdjacency):
            return self._incidence_to_adjacency(node, children[0],
                                                children[1])
        if isinstance(node, Elementwise):
            return elementwise_apply(children[0], children[1], node.op,
                                     zero=node.result_zero)
        if isinstance(node, Reduce):
            return self._reduce(node, children[0])
        if isinstance(node, Select):
            return children[0].select(node.row_selector, node.col_selector)
        if isinstance(node, WithKeys):
            return children[0].with_keys(node.new_row_keys,
                                         node.new_col_keys)
        if isinstance(node, Kron):
            return kron(children[0], children[1], node.op,
                        zero=node.result_zero)
        raise AssertionError(f"unhandled node kind {node.kind!r}")

    # -- products ------------------------------------------------------------
    def _kernel_for(self, node: Node, a: AssociativeArray,
                    b: AssociativeArray) -> str:
        """The cost model's kernel, demoted to ``auto`` when the actual
        operands disprove the numeric prediction."""
        est = self.plan.estimates.get(id(node))
        kernel = est.kernel if est is not None else "auto"
        if kernel in ("scipy", "sortmerge", "reduceat", "dense_blocked"):
            from repro.arrays.sparse_backend import vectorizable
            if not vectorizable(a, b, node.op_pair):
                return "generic"
        return kernel if kernel != "-" else "auto"

    @staticmethod
    def _empty_product(node, a: AssociativeArray,
                       b: AssociativeArray) -> Optional[AssociativeArray]:
        """O(1) short-circuit: a sparse product with an empty operand
        has no multiplicative terms — valid for *every* algebra, and
        what keeps a long hop chain cheap after its frontier empties
        (static dead-branch pruning cannot see runtime emptiness)."""
        if node.mode == "sparse" and (a.nnz == 0 or b.nnz == 0):
            return AssociativeArray.empty(node.row_keys, node.col_keys,
                                          zero=node.zero)
        return None

    def _timed_product(self, node: Node, kernel: str, fn):
        """Run one product; feed (kernel, terms, seconds) back into the
        measured cost model, the active trace, and the event log.

        The event makes every routing decision auditable after the
        fact: which kernel actually ran, for which op-pair, over how
        many estimated multiplicative terms — not inferred from
        aggregate metrics.
        """
        est = self.plan.estimates.get(id(node))
        terms = est.flops if est is not None else 0.0
        with span("kernel", kernel=kernel):
            started = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - started
        record_kernel_sample(kernel, terms, elapsed)
        pair = getattr(node, "op_pair", None)
        emit_event("expr.kernel", kernel=kernel,
                   op_pair=pair.name if pair is not None else "-",
                   terms=terms, seconds=elapsed, node=node.kind)
        return result

    def _matmul(self, node: MatMul, a: AssociativeArray,
                b: AssociativeArray) -> AssociativeArray:
        empty = self._empty_product(node, a, b)
        if empty is not None:
            return empty
        kernel = self._kernel_for(node, a, b)
        return self._timed_product(
            node, kernel,
            lambda: multiply(a, b, node.op_pair, mode=node.mode,
                             kernel=kernel))

    def _incidence_to_adjacency(
        self, node: IncidenceToAdjacency,
        e: AssociativeArray, f: AssociativeArray,
    ) -> AssociativeArray:
        empty = self._empty_product(node, e, f)
        if empty is not None:
            return empty
        if id(node) in self.plan.shard_nodes:
            return self._sharded(node, e, f)
        if node.mode == "sparse":
            backends = vectorizable_operands(e, f)
            if backends is not None:
                ne, nf = backends
                kernel = self._kernel_for(node, e, f)
                if kernel == "scipy":
                    # ⊕.⊗ = +.×: hand both CSR forms to scipy and let
                    # its O(nnz) counting transpose contract ``saᵀ·sb``
                    # — no transposed array, no comparison sort.
                    return self._timed_product(
                        node, "scipy",
                        lambda: _fused_scipy(node, ne, nf, e, f))
                if kernel == "sortmerge":
                    # E's natural (row, col) lex order *is* Eᵀ's CSC
                    # order (inner = edge = E's row): feed the COO
                    # arrays straight into the sort-merge join — no
                    # transposed array, no re-sort of either operand.
                    return self._timed_product(
                        node, "sortmerge",
                        lambda: _fused_sortmerge(node, ne, nf, e, f))
                # E's cached CSC *is* Eᵀ's CSR: adopt it directly —
                # the fused kernel never builds a transposed array.
                et = AssociativeArray._adopt(
                    ne.transposed(), e.col_keys, e.row_keys, e.zero)
                return self._timed_product(
                    node, kernel,
                    lambda: multiply(et, f, node.op_pair, mode="sparse",
                                     kernel=kernel))
            return self._timed_product(
                node, "generic",
                lambda: _fused_generic(e, f, node.op_pair))
        return self._timed_product(
            node, "dense_blocked",
            lambda: multiply(e.transpose(), f, node.op_pair,
                             mode="dense", kernel="auto"))

    def _sharded(self, node: IncidenceToAdjacency, e: AssociativeArray,
                 f: AssociativeArray) -> AssociativeArray:
        from repro.shard.plan import ShardedAdjacencyPlan
        options = dict(self.plan.options)
        options.setdefault("n_shards", 4)
        options.setdefault("executor", "thread")
        # The planner already licensed the pair (criteria + order-
        # insensitive ⊕); re-certifying per shard run would be waste.
        options["unsafe_ok"] = True
        shard_plan = ShardedAdjacencyPlan(node.op_pair, **options)
        with span("shard.offload", n_shards=options["n_shards"],
                  executor=options["executor"]):
            return shard_plan.run((e, f)).adjacency

    # -- reductions ----------------------------------------------------------
    @staticmethod
    def _reduce(node: Reduce, array: AssociativeArray) -> AssociativeArray:
        if node.axis == "rows":
            folded = reduce_rows(array, node.op)
            data = {(r, REDUCE_KEY): v for r, v in folded.items()}
            return AssociativeArray(data, row_keys=array.row_keys,
                                    col_keys=[REDUCE_KEY],
                                    zero=array.zero)
        folded = reduce_cols(array, node.op)
        data = {(REDUCE_KEY, c): v for c, v in folded.items()}
        return AssociativeArray(data, row_keys=[REDUCE_KEY],
                                col_keys=array.col_keys, zero=array.zero)


def _fused_scipy(node: IncidenceToAdjacency, ne, nf,
                 e: AssociativeArray, f: AssociativeArray
                 ) -> AssociativeArray:
    """``Eᵀ·F`` for the arithmetic semiring, fully inside scipy.

    ``sa.T`` is a free CSC view of ``E``'s CSR, and scipy's SpGEMM
    converts it with a linear-time counting transpose — cheaper than
    materializing our lex-sorted CSC permutation first.  The product's
    CSR arrays are adopted as the result backend.
    """
    import scipy.sparse as sp
    from repro.arrays.backend import NumericBackend
    sa = sp.csr_matrix(ne.csr(), shape=ne.shape)
    sb = sp.csr_matrix(nf.csr(), shape=nf.shape)
    sc = (sa.T @ sb).tocsr()
    sc.eliminate_zeros()
    sc.sort_indices()
    be = NumericBackend.from_csr(sc.data, sc.indices, sc.indptr, sc.shape)
    return AssociativeArray._adopt(be, e.col_keys, f.col_keys,
                                   node.op_pair.zero)


def _fused_sortmerge(node: IncidenceToAdjacency, ne, nf,
                     e: AssociativeArray, f: AssociativeArray
                     ) -> AssociativeArray:
    """``Eᵀ ⊕.⊗ F`` through the sortmerge kernel, transpose-free.

    ``Eᵀ``'s CSC order sorts by (``Eᵀ`` column, ``Eᵀ`` row) = (``E``
    row, ``E`` col) — exactly the lex order the columnar backend
    already keeps — so ``E``'s raw COO arrays are the join's A side
    verbatim, and ``F``'s raw arrays are its CSR-ordered B side.
    """
    from repro.arrays.matmul import sortmerge_coo
    rows, cols, vals = sortmerge_coo(
        ne.rows, ne.cols, ne.vals,
        nf.rows, nf.cols, nf.vals, node.op_pair)
    return AssociativeArray._from_numeric(
        rows, cols, vals, row_keys=e.col_keys, col_keys=f.col_keys,
        zero=node.op_pair.zero, presorted=True, filtered=True)


def _fused_generic(e: AssociativeArray, f: AssociativeArray,
                   op_pair: OpPair) -> AssociativeArray:
    """Generic fused ``Eᵀ ⊕.⊗ F`` for arbitrary value sets.

    The body of :func:`repro.arrays.matmul.multiply_generic` reading
    ``E`` transposed on the fly — the dict of the transposed array is
    never built.  Fold order follows the shared edge-key order exactly
    as the unfused evaluation does.
    """
    zero = op_pair.zero
    inner = e.row_keys            # the shared edge key set K
    inner_pos = inner.position_map()
    a_rows: Dict[Any, List[Tuple[int, Any, Any]]] = {}
    for (k, r), v in e.to_dict().items():   # read E(k, r) as Eᵀ(r, k)
        a_rows.setdefault(r, []).append((inner_pos[k], k, v))
    for terms in a_rows.values():
        terms.sort(key=lambda t: t[0])
    b_rows: Dict[Any, List[Tuple[Any, Any]]] = {}
    for (k, c), v in f.to_dict().items():
        b_rows.setdefault(k, []).append((c, v))

    out: Dict[Tuple[Any, Any], Any] = {}
    started: Dict[Tuple[Any, Any], bool] = {}
    mul = op_pair.mul
    add = op_pair.add
    for r, row_terms in a_rows.items():
        for _pos, k, av in row_terms:
            for c, bv in b_rows.get(k, ()):
                term = mul(av, bv)
                rc = (r, c)
                if rc in started:
                    out[rc] = add(out[rc], term)
                else:
                    out[rc] = term
                    started[rc] = True
    data = {rc: v for rc, v in out.items() if not op_pair.is_zero(v)}
    return AssociativeArray(data, row_keys=e.col_keys, col_keys=f.col_keys,
                            zero=zero,
                            backend="dict" if e.pinned and f.pinned
                            else "auto")


# ---------------------------------------------------------------------------
# Vector front-ends (the query-service entry points)
# ---------------------------------------------------------------------------

def _vector_array(vector: Dict[Any, Any], array: AssociativeArray,
                  zero: Any) -> AssociativeArray:
    """A 1×n array over ``array``'s row keys from a ``{key: value}``
    vector; keys outside the row key set are ignored (matching
    :func:`repro.graphs.algorithms.semiring_vecmat`)."""
    rows = array.row_keys
    data = {(_VEC_KEY, k): v for k, v in vector.items() if k in rows}
    return AssociativeArray(data, row_keys=[_VEC_KEY], col_keys=rows,
                            zero=zero)


def vecmat(vector: Dict[Any, Any], array: AssociativeArray,
           op_pair: OpPair) -> Dict[Any, Any]:
    """``y = x ⊕.⊗ A`` through the expression engine.

    Drop-in equivalent of
    :func:`repro.graphs.algorithms.semiring_vecmat` — same fold order
    (the terms of each output coordinate arrive in row-key order), same
    zero elision — but the product runs on the array's cached compiled
    backend instead of re-indexing a Python dict per call.
    """
    x = _vector_array(vector, array, op_pair.zero)
    result = evaluate(lazy(x, name="x").matmul(lazy(array, name="A"),
                                               op_pair))
    return {c: v for _r, c, v in result.entries()}


def khop_frontier(
    adjacency: AssociativeArray,
    source: Any,
    k: int,
    op_pair: OpPair,
    *,
    optimize: bool = True,
) -> Dict[Any, Any]:
    """The k-hop frontier ``x ⊕.⊗ Aᵏ`` from ``source`` as one fused plan.

    Builds the whole hop chain as a single expression — after
    common-subexpression elimination every hop shares one ``A`` leaf
    (and therefore one compiled backend) — instead of looping Python
    vector–matrix products.  ``adjacency`` must be square (the service
    publishes square snapshots).  Falls back to the reference
    :func:`~repro.graphs.algorithms.semiring_vecmat` loop for
    degenerate algebras whose ``1`` equals their ``0`` (the seed vector
    ``{source: 1}`` is not sparse-representable there).
    """
    if k < 0:
        raise ExprError(f"k must be >= 0, got {k}")
    frontier = {source: op_pair.one}
    if k == 0:
        return frontier
    if values_equal(op_pair.one, op_pair.zero):
        from repro.graphs.algorithms import semiring_vecmat
        for _ in range(k):
            if not frontier:
                break
            frontier = semiring_vecmat(frontier, adjacency, op_pair)
        return frontier
    x = _vector_array(frontier, adjacency, op_pair.zero)
    expr = lazy(x, name="seed")
    a = lazy(adjacency, name="A")
    for _ in range(k):
        expr = expr.matmul(a, op_pair)
    result = evaluate(expr, optimize=optimize)
    return {c: v for _r, c, v in result.entries()}

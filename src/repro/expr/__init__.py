"""``repro.expr`` — lazy expressions, certified rewrites, cost-based
execution.

The subsystem the GraphBLAS nonblocking model calls for: ``lazy()``
captures chains of array operations as a DAG
(:mod:`repro.expr.ast`), an optimizer applies rewrite rules whose
algebraic preconditions are *verified* through the certification
machinery before each application (:mod:`repro.expr.rewrite`), a cost
model sizes every intermediate and picks kernels
(:mod:`repro.expr.cost`), and the executor runs the optimized plan —
fusing ``Eoutᵀ ⊕.⊗ Ein`` into a single incidence-to-adjacency kernel,
sharing common subexpressions, and spilling oversized products to the
out-of-core shard engine (:mod:`repro.expr.execute`).

>>> from repro.expr import lazy, evaluate
>>> from repro.values.semiring import get_op_pair
>>> pair = get_op_pair("plus_times")
>>> adjacency = evaluate(
...     lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair))
... # doctest: +SKIP
"""

from repro.expr.ast import (
    ExprError,
    LazyArray,
    Node,
    REDUCE_KEY,
    lazy,
)
from repro.expr.cost import CostEstimate, estimate_plan
from repro.expr.execute import (
    Plan,
    evaluate,
    explain,
    khop_frontier,
    plan,
    vecmat,
)
from repro.expr.rewrite import (
    AppliedRewrite,
    DEFAULT_RULES,
    PropertyGate,
    RefusedRewrite,
    RewriteRule,
    optimize,
)

__all__ = [
    "ExprError",
    "LazyArray",
    "Node",
    "REDUCE_KEY",
    "lazy",
    "CostEstimate",
    "estimate_plan",
    "Plan",
    "plan",
    "evaluate",
    "explain",
    "vecmat",
    "khop_frontier",
    "AppliedRewrite",
    "RefusedRewrite",
    "RewriteRule",
    "DEFAULT_RULES",
    "PropertyGate",
    "optimize",
]

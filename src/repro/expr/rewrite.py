"""Certification-gated rewrite rules for lazy expression DAGs.

Every rule here is a *theorem application*: it rewrites an expression
into a cheaper equivalent **only when the algebraic properties its
equivalence proof needs actually hold** for the op-pair at the rewrite
site.  The properties are not trusted from metadata — each requirement
is verified through the :mod:`repro.values.properties` checkers (and,
for the Theorem II.1 criteria, through the
:mod:`repro.core.certify` engine), exactly the machinery that gates
adjacency construction.  Certification thereby stops being only a
construction gate and becomes the query optimizer's license database:

``double_transpose``
    ``(Aᵀ)ᵀ → A``.  Pure structure; no properties needed.

``transpose_over_elementwise``
    ``(A op B)ᵀ → Aᵀ op Bᵀ``.  Pure structure.

``transpose_pushdown``
    ``(A ⊕.⊗ B)ᵀ → Bᵀ ⊕.⊗ Aᵀ``.  Requires **commutative ⊗** — the
    Section III observation that ``(AB)ᵀ = BᵀAᵀ`` may fail for
    non-commutative ⊗ (``max.concat``) is exactly the refusal case.

``fuse_incidence_adjacency``
    ``Eᵀ ⊕.⊗ F → incidence_to_adjacency(E, F)`` — one fused kernel, no
    materialized transpose.  Requires the **Theorem II.1 criteria**:
    the fused kernel commits to sparse evaluation, and sparse ≡ faithful
    is precisely what the criteria certify.

``reduce_into_matmul``
    ``reduce(A ⊕.⊗ B) → A ⊕.⊗ reduce(B)`` (and the column-axis dual) —
    fold the reduction into the product so the full m×n intermediate is
    never materialized.  Requires **associative and commutative ⊕** and
    **distributivity** (the re-association/factoring steps of the
    proof), plus the criteria (pattern preservation).

``prune_dead_branches``
    A sparse product with a statically-empty factor collapses to an
    empty leaf — no terms exist, whatever the algebra.  (Element-wise
    nodes are deliberately *not* pruned: ``x ⊕ empty → x`` would need
    the identity axiom to hold for whatever values ``x`` stores, which
    no domain-level check can guarantee.)

Common-subexpression elimination (:func:`eliminate_common_subexpressions`)
runs as a final pass: it is pure structure, but it is what makes a
k-hop chain ``x·A·A·…·A`` share one ``A`` leaf (and one promoted
backend) across every hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.core.certify import certify_cached
from repro.obs.events import emit_event
from repro.obs.metrics import get_registry
from repro.expr.ast import (
    Elementwise,
    ExprError,
    IncidenceToAdjacency,
    Leaf,
    MatMul,
    Node,
    Reduce,
    Transpose,
    topological_order,
)
from repro.values.properties import DEFAULT_SAMPLES, check_named_property
from repro.values.semiring import OpPair

__all__ = [
    "AppliedRewrite",
    "RefusedRewrite",
    "PropertyGate",
    "RewriteRule",
    "DEFAULT_RULES",
    "optimize",
    "eliminate_common_subexpressions",
    "known_empty",
]

#: Safety bound on per-node rule applications (rewrites can cascade —
#: a pushdown exposes a fusion — but must terminate).
_MAX_APPLICATIONS_PER_NODE = 16

#: Process-wide memo of property-check reports, keyed by (property,
#: operand side, op-pair identity, samples, seed).  The same discipline
#: as :data:`repro.core.certify._CERTIFY_CACHE`: the checked pair is
#: stored in the value, pinning it alive so the ``id()`` in the key can
#: never be reused by a different pair.  Property checks are pure over
#: frozen pairs, and every ``plan()`` call builds a fresh gate — without
#: this cache each evaluation would re-run the 400-sample sweeps.
_REPORT_CACHE: Dict[Tuple, Tuple["OpPair", bool, str]] = {}


@dataclass(frozen=True)
class AppliedRewrite:
    """One rewrite the optimizer performed, with its license.

    ``properties`` holds the human-readable evidence lines — one per
    algebraic property the rule required, each naming the property and
    the verdict that licensed the application.
    """

    rule: str
    description: str
    site: str
    properties: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RefusedRewrite:
    """A rewrite that matched structurally but was refused: the op-pair
    could not be certified for the properties the rule requires."""

    rule: str
    site: str
    reason: str


class PropertyGate:
    """Verified-property oracle for rewrite rules, memoised per op-pair.

    Each query runs the real checker from
    :mod:`repro.values.properties` over the pair's domain (seeded, so
    plans are reproducible) and caches the report.  The metadata claims
    on :class:`~repro.values.operations.BinaryOp` act as an additional
    veto — mirroring :func:`repro.shard.merge.check_merge_safety`, a
    pair whose author flags ``⊕`` non-associative is refused even if
    sampling fails to find a counterexample.
    """

    #: Relative tolerance for the re-association/re-ordering checks:
    #: float64 evaluation of a real-number ⊕ rounds differently per
    #: association, which is evaluation noise, not an axiom violation.
    FLOAT_REL_TOL = 1e-9

    def __init__(self, *, samples: int = DEFAULT_SAMPLES,
                 seed: int = 0xD4) -> None:
        self.samples = samples
        self.seed = seed

    # -- primitive verified checks -------------------------------------------
    def _check(self, prop: str, pair: OpPair, which: str) -> Tuple[bool, str]:
        """(verdict, evidence line) for one named property of one op.

        Memoised process-wide (see :data:`_REPORT_CACHE`), so repeated
        plans over the same algebra pay the sampling sweep once —
        matching the caching depth of the criteria path.
        """
        key = (prop, which, id(pair), self.samples, self.seed)
        cached = _REPORT_CACHE.get(key)
        if cached is not None and cached[0] is pair:
            get_registry().counter(
                "expr_property_cache_hits_total",
                "Property-report cache hits (sampling sweeps avoided)"
            ).inc()
            return cached[1], cached[2]
        get_registry().counter(
            "expr_property_cache_misses_total",
            "Property-report cache misses (sampling sweeps run)").inc()
        if prop == "distributivity":
            report = check_named_property(
                prop, pair.add, pair.mul, pair.domain,
                samples=self.samples, seed=self.seed,
                rel_tol=self.FLOAT_REL_TOL)
        else:
            op = pair.add if which == "add" else pair.mul
            report = check_named_property(
                prop, op, pair.domain, samples=self.samples,
                seed=self.seed, rel_tol=self.FLOAT_REL_TOL)
        _REPORT_CACHE[key] = (pair, report.holds, report.describe())
        return report.holds, report.describe()

    def criteria(self, pair: OpPair) -> Tuple[bool, List[str]]:
        """Theorem II.1 criteria, via the (cached) certification engine."""
        cert = certify_cached(pair, samples=self.samples, seed=self.seed)
        lines = [f"Theorem II.1 criteria for {pair.display}: "
                 + ("certified" if cert.safe else "VIOLATED")]
        lines += ["  " + r.describe() for r in (
            cert.criteria.zero_sum_free,
            cert.criteria.no_zero_divisors,
            cert.criteria.annihilator)]
        return cert.safe, lines

    def mul_commutative(self, pair: OpPair) -> Tuple[bool, List[str]]:
        ok, line = self._check("commutativity", pair, "mul")
        if ok and not pair.mul.commutative:
            return False, [line + " — but ⊗ is declared non-commutative; "
                           "the declaration vetoes"]
        return ok, [line]

    def add_associative_commutative(self, pair: OpPair) -> Tuple[bool, List[str]]:
        ok_a, line_a = self._check("associativity", pair, "add")
        ok_c, line_c = self._check("commutativity", pair, "add")
        lines = [line_a, line_c]
        if (ok_a and ok_c) and not (pair.add.associative
                                    and pair.add.commutative):
            return False, lines + ["⊕ is declared order-sensitive; the "
                                   "declaration vetoes"]
        return ok_a and ok_c, lines

    def distributive(self, pair: OpPair) -> Tuple[bool, List[str]]:
        ok, line = self._check("distributivity", pair, "both")
        return ok, [line]


class RewriteRule:
    """Base rule: a structural pattern plus its algebraic license.

    ``requires`` names the properties the rule's equivalence proof
    needs (documentation *and* contract — :meth:`licensed` must verify
    exactly these through the gate).
    """

    name = "?"
    description = "?"
    #: Property slugs the rule requires, e.g. ``("mul commutative",)``.
    requires: Tuple[str, ...] = ()

    def matches(self, node: Node) -> bool:
        """Whether the structural pattern applies at ``node``."""
        raise NotImplementedError

    def licensed(self, node: Node, gate: PropertyGate) -> Tuple[bool, List[str]]:
        """Verify the required properties; (verdict, evidence lines)."""
        return True, []

    def apply(self, node: Node) -> Node:
        """Rewrite ``node`` (only called after matches + licensed)."""
        raise NotImplementedError


class DoubleTranspose(RewriteRule):
    name = "double_transpose"
    description = "(Aᵀ)ᵀ → A"
    requires = ()

    def matches(self, node: Node) -> bool:
        return isinstance(node, Transpose) \
            and isinstance(node.children[0], Transpose)

    def apply(self, node: Node) -> Node:
        return node.children[0].children[0]


class TransposeOverElementwise(RewriteRule):
    name = "transpose_over_elementwise"
    description = "(A op B)ᵀ → Aᵀ op Bᵀ"
    requires = ()

    def matches(self, node: Node) -> bool:
        return isinstance(node, Transpose) \
            and isinstance(node.children[0], Elementwise)

    def apply(self, node: Node) -> Node:
        ew = node.children[0]
        return Elementwise(Transpose(ew.children[0]),
                           Transpose(ew.children[1]), ew.op,
                           zero=ew.result_zero, role=ew.role)


class TransposePushdown(RewriteRule):
    name = "transpose_pushdown"
    description = "(A ⊕.⊗ B)ᵀ → Bᵀ ⊕.⊗ Aᵀ"
    requires = ("commutativity of ⊗",)

    def matches(self, node: Node) -> bool:
        return isinstance(node, Transpose) \
            and isinstance(node.children[0],
                           (MatMul, IncidenceToAdjacency)) \
            and node.children[0].mode == "sparse"

    def licensed(self, node: Node, gate: PropertyGate) -> Tuple[bool, List[str]]:
        # Cᵀ(j,i) = ⊕_k A(i,k) ⊗ B(k,j) while (BᵀAᵀ)(j,i) folds
        # B(k,j) ⊗ A(i,k) over the same key order: term-wise equal iff
        # ⊗ commutes (Section III's (AB)ᵀ ≠ BᵀAᵀ caveat).
        return gate.mul_commutative(node.children[0].op_pair)

    def apply(self, node: Node) -> Node:
        mm = node.children[0]
        if isinstance(mm, IncidenceToAdjacency):
            # (EᵀF)ᵀ = FᵀE: Corollary III.1's reverse adjacency, still
            # one fused kernel with the incidence roles swapped.
            return IncidenceToAdjacency(mm.children[1], mm.children[0],
                                        mm.op_pair, mm.mode)
        return MatMul(Transpose(mm.children[1]), Transpose(mm.children[0]),
                      mm.op_pair, mm.mode)


class FuseIncidenceAdjacency(RewriteRule):
    name = "fuse_incidence_adjacency"
    description = "Eᵀ ⊕.⊗ F → incidence_to_adjacency(E, F)"
    requires = ("Theorem II.1 criteria",)

    def matches(self, node: Node) -> bool:
        return isinstance(node, MatMul) and node.mode == "sparse" \
            and isinstance(node.children[0], Transpose)

    def licensed(self, node: Node, gate: PropertyGate) -> Tuple[bool, List[str]]:
        # The fused kernel commits to sparse evaluation over the
        # compiled incidence form; sparse ≡ Definition I.3 is exactly
        # what the criteria certify, so an uncertified pair keeps the
        # evaluation shape the user literally wrote.
        return gate.criteria(node.op_pair)

    def apply(self, node: Node) -> Node:
        return IncidenceToAdjacency(node.children[0].children[0],
                                    node.children[1], node.op_pair,
                                    node.mode)


class ReduceIntoMatMul(RewriteRule):
    name = "reduce_into_matmul"
    description = "reduce(A ⊕.⊗ B) → A ⊕.⊗ reduce(B)"
    requires = ("Theorem II.1 criteria", "associativity of ⊕",
                "commutativity of ⊕", "distributivity")

    @staticmethod
    def _product(node: Node) -> Optional[Node]:
        child = node.children[0]
        if isinstance(child, (MatMul, IncidenceToAdjacency)) \
                and child.mode == "sparse":
            return child
        return None

    def matches(self, node: Node) -> bool:
        if not isinstance(node, Reduce):
            return False
        product = self._product(node)
        if product is None:
            return False
        # The folded op must be the product's own ⊕ for the exchange
        # ⊕_c ⊕_k (a⊗b) = ⊕_k (a ⊗ ⊕_c b) to even be well-typed.
        add = product.op_pair.add
        return node.op.name == add.name and node.op.func is add.func

    def licensed(self, node: Node, gate: PropertyGate) -> Tuple[bool, List[str]]:
        pair = self._product(node).op_pair
        ok_crit, lines = gate.criteria(pair)
        ok_add, add_lines = gate.add_associative_commutative(pair)
        ok_dist, dist_lines = gate.distributive(pair)
        return (ok_crit and ok_add and ok_dist,
                lines + add_lines + dist_lines)

    def apply(self, node: Node) -> Node:
        product = self._product(node)
        a, b = product.children
        pair, mode = product.op_pair, product.mode
        if isinstance(product, IncidenceToAdjacency):
            # A = Eᵀ·F.  Row-reducing A folds F's columns first
            # (⊕_c A(r,c) = ⊕_k E(k,r) ⊗ (⊕_c F(k,c))); column-reducing
            # folds E's columns, and the collapsed E is still an
            # incidence operand sharing the edge rows, so the result
            # stays one fused kernel either way.
            if node.axis == "rows":
                return IncidenceToAdjacency(
                    a, Reduce(b, node.op, "rows"), pair, mode)
            return IncidenceToAdjacency(
                Reduce(a, node.op, "rows"), b, pair, mode)
        if node.axis == "rows":
            return MatMul(a, Reduce(b, node.op, "rows"), pair, mode)
        return MatMul(Reduce(a, node.op, "cols"), b, pair, mode)


class PruneDeadBranches(RewriteRule):
    name = "prune_dead_branches"
    description = "collapse sparse products with a statically-empty factor"
    requires = ()

    # Only *products* are pruned.  An element-wise ``x ⊕ empty → x``
    # prune would additionally need ``op(v, zero) = v`` for every value
    # ``x`` actually stores — the identity axiom only certifies that on
    # the op's domain, and arrays are free to hold out-of-domain values
    # (eager evaluation folds them; a prune would not).  No static
    # check can license it, so the optimizer leaves element-wise nodes
    # alone.  The sparse-product prune needs nothing: an empty operand
    # contributes no multiplicative terms whatever the values.

    def matches(self, node: Node) -> bool:
        if isinstance(node, (MatMul, IncidenceToAdjacency)):
            if node.mode != "sparse":
                return False   # dense folds range over unstored zeros
            return any(known_empty(c) for c in node.children)
        return False

    def licensed(self, node: Node, gate: PropertyGate) -> Tuple[bool, List[str]]:
        return True, [
            "sparse evaluation: an empty operand contributes no "
            "multiplicative terms, so every output ⊕-fold is empty"]

    def apply(self, node: Node) -> Node:
        empty = AssociativeArray.empty(node.row_keys, node.col_keys,
                                       zero=node.zero)
        return Leaf(empty, name="∅")


#: The optimizer's rule pipeline, in application order.
DEFAULT_RULES: Tuple[RewriteRule, ...] = (
    DoubleTranspose(),
    TransposeOverElementwise(),
    TransposePushdown(),
    PruneDeadBranches(),
    ReduceIntoMatMul(),
    FuseIncidenceAdjacency(),
)


def known_empty(node: Node) -> bool:
    """Whether ``node`` provably evaluates to an all-zero array without
    running anything (static sparsity propagation).

    Iterative bottom-up over the DAG — a deep hop chain must not blow
    the recursion limit just to be asked whether it is empty.
    """
    memo: Dict[Node, bool] = {}
    for n in topological_order(node):
        if isinstance(n, Leaf):
            empty = n.array.nnz == 0
        elif isinstance(n, (MatMul, IncidenceToAdjacency)):
            # Sparse products of an empty factor have no terms at all.
            empty = n.mode == "sparse" \
                and any(memo[c] for c in n.children)
        elif isinstance(n, Elementwise):
            empty = all(memo[c] for c in n.children)
        elif n.kind == "kron":
            empty = any(memo[c] for c in n.children)
        elif n.kind in ("transpose", "reduce", "select", "with_keys"):
            empty = memo[n.children[0]]
        else:
            empty = False
        memo[n] = empty
    return memo[node]


def optimize(
    root: Node,
    gate: PropertyGate,
    *,
    rules: Tuple[RewriteRule, ...] = DEFAULT_RULES,
) -> Tuple[Node, List[AppliedRewrite], List[RefusedRewrite]]:
    """Bottom-up rewrite to fixpoint, then common-subexpression sharing.

    Children are optimized before their parent (memoised over the DAG),
    and a rewritten node is re-examined until no rule fires — a pushdown
    can expose a fusion.  Every application records the verified
    property evidence that licensed it; every structural match the gate
    refused is recorded too, so ``explain()`` can show *why* a plan kept
    its original shape.

    The source DAG is walked in precomputed topological order (and
    node signatures are pre-seeded the same way), so the recursive
    helper only ever descends into the shallow fresh structure a rule
    just created — a 500-hop chain optimizes without approaching the
    recursion limit.
    """
    applied: List[AppliedRewrite] = []
    refused: List[RefusedRewrite] = []
    refused_sites = set()
    # Keyed by the node *object* (identity semantics — Node defines no
    # __eq__), never by id(): temporary nodes a rule creates and then
    # discards would be garbage-collected, and CPython reuses their
    # addresses, so an id-keyed memo can hand back a stale, unrelated
    # subtree.  Object keys pin every memoised node alive for the pass.
    memo: Dict[Node, Node] = {}

    def visit(node: Node) -> Node:
        hit = memo.get(node)
        if hit is not None:
            return hit
        new_children = tuple(visit(c) for c in node.children)
        current = node if new_children == node.children \
            else node.replace_children(new_children)
        for _ in range(_MAX_APPLICATIONS_PER_NODE):
            fired = False
            for rule in rules:
                if not rule.matches(current):
                    continue
                ok, evidence = rule.licensed(current, gate)
                if not ok:
                    key = (rule.name, current.signature())
                    if key not in refused_sites:
                        refused_sites.add(key)
                        failing = [ln.strip() for ln in evidence
                                   if "FAILS" in ln or "VIOLATED" in ln
                                   or "vetoes" in ln]
                        refused.append(RefusedRewrite(
                            rule.name, current.label(),
                            "; ".join(failing or evidence)
                            or "properties not certified"))
                        get_registry().counter(
                            "expr_rewrites_refused_total",
                            "Rewrites refused per rule (properties "
                            "not certified)", rule=rule.name).inc()
                        emit_event(
                            "rewrite_refused", rule=rule.name,
                            site=current.label(),
                            reason=refused[-1].reason)
                    continue
                site = current.label()
                current = rule.apply(current)
                get_registry().counter(
                    "expr_rewrites_applied_total",
                    "Rewrites applied per rule", rule=rule.name).inc()
                # The rewritten form may itself contain unvisited
                # structure (e.g. fresh Transpose wrappers).
                rewritten_children = tuple(visit(c)
                                           for c in current.children)
                if rewritten_children != current.children:
                    current = current.replace_children(rewritten_children)
                applied.append(AppliedRewrite(
                    rule.name, rule.description, site, tuple(evidence)))
                fired = True
                break
            if not fired:
                break
        memo[node] = current
        return current

    for n in topological_order(root):
        n.signature()      # children-first: each computation is shallow
        visit(n)
    new_root = memo[root]
    new_root, shared = eliminate_common_subexpressions(new_root)
    if shared:
        applied.append(AppliedRewrite(
            "common_subexpression_elimination",
            "structurally identical subtrees share one node "
            "(evaluated once)",
            f"{shared} duplicate subtree(s) merged", ()))
        get_registry().counter(
            "expr_rewrites_applied_total", "Rewrites applied per rule",
            rule="common_subexpression_elimination").inc()
    return new_root, applied, refused


def eliminate_common_subexpressions(root: Node) -> Tuple[Node, int]:
    """Share structurally identical subtrees; returns (root, merges).

    Purely structural (same operator, same operands, same algebra ⇒
    same value), so it needs no property license.  The execution
    engine memoises by node identity, so shared nodes evaluate once.
    """
    canonical: Dict[Tuple, Node] = {}
    memo: Dict[Node, Node] = {}    # object-keyed; see optimize()
    merges = 0

    def visit(node: Node) -> Node:
        nonlocal merges
        hit = memo.get(node)
        if hit is not None:
            return hit
        new_children = tuple(visit(c) for c in node.children)
        current = node if new_children == node.children \
            else node.replace_children(new_children)
        sig = current.signature()
        kept = canonical.get(sig)
        if kept is None:
            canonical[sig] = current
            kept = current
        elif kept is not current:
            merges += 1
        memo[node] = kept
        return kept

    for n in topological_order(root):
        n.signature()
        visit(n)
    return memo[root], merges

"""Markdown report generation for paper-vs-measured results.

`EXPERIMENTS.md`'s verification content can be regenerated from code so
the document can never drift from what the harness actually measures:

    python -c "from repro.experiments.report import render_markdown; \\
               print(render_markdown())" > verification.md
"""

from __future__ import annotations

from typing import List

from repro.experiments.figures import all_experiments
from repro.experiments.harness import run_all
from repro.experiments.expected import CRITERIA_TABLE
from repro.values.semiring import get_op_pair

__all__ = ["render_markdown", "render_criteria_markdown"]


def render_criteria_markdown(seed: int = 20170225) -> str:
    """The certification-catalog table as GitHub markdown."""
    from repro.core.certify import certify
    lines = [
        "| op-pair | domain | verdict | violated criterion | witness |",
        "|---|---|---|---|---|",
    ]
    for name in sorted(CRITERIA_TABLE):
        pair = get_op_pair(name)
        cert = certify(pair, seed=seed)
        if cert.safe:
            lines.append(
                f"| `{pair.display}` | {pair.domain.name} | SAFE | — | — |")
        else:
            violation = cert.criteria.first_violation()
            # Note: a violation report is falsy (holds == False), so the
            # None check must be explicit.
            crit = violation.property_name if violation is not None else "?"
            wit = (f"{cert.witness.kind} {cert.witness.values!r}"
                   if cert.witness else "—")
            lines.append(
                f"| `{pair.display}` | {pair.domain.name} | UNSAFE | "
                f"{crit} | {wit} |")
    return "\n".join(lines)


def render_markdown() -> str:
    """Full verification report as markdown (one section per artifact)."""
    report = run_all()
    out: List[str] = [
        "# Verification report (generated)",
        "",
        "| experiment | verdict |",
        "|---|---|",
    ]
    for name, matched in report.summary_rows():
        out.append(f"| {name} | {'MATCH' if matched else 'MISMATCH'} |")
    out.append("")
    for v in report.verifications:
        out.append(f"## {v.experiment}")
        out.append("")
        for check, ok, detail in v.checks:
            mark = "✓" if ok else "✗"
            suffix = f" — {detail}" if detail else ""
            out.append(f"- {mark} {check}{suffix}")
        out.append("")
    out.append("## Section IV synopsis")
    out.append("")
    for name, ok, detail in report.synopsis_rows:
        mark = "✓" if ok else "✗"
        out.append(f"- {mark} `{name}`" + (f" — {detail}" if detail else ""))
    out.append("")
    out.append("## Certification catalog")
    out.append("")
    out.append(render_criteria_markdown())
    out.append("")
    verdict = "**ALL MATCHED**" if report.all_matched \
        else "**MISMATCHES FOUND**"
    out.append(verdict)
    return "\n".join(out)

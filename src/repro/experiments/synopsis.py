"""Programmatic validation of the Section IV synopsis.

The paper closes Section IV with a synopsis of what each op-pair computes
("+.× — sum of products of edge weights connecting two vertices; ...").
This module turns each synopsis line into an *independent* reference
computation over the raw edge list — plain ``sum``/``max``/``min`` over
Python lists, no associative-array machinery — and checks that the
library's adjacency arrays realise exactly those semantics on random
weighted multigraphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.core.construction import adjacency_array
from repro.graphs.digraph import EdgeKeyedDigraph
from repro.graphs.generators import erdos_renyi_multigraph
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair

__all__ = ["SynopsisLine", "SYNOPSIS", "validate_synopsis"]


@dataclass(frozen=True)
class SynopsisLine:
    """One line of the paper's synopsis, with a reference semantics."""

    pair_name: str
    #: The paper's prose for this pair.
    prose: str
    #: Reference: given the per-edge terms ``wout ⊗ win`` (plain floats,
    #: in edge-key order), compute the adjacency value directly.
    reference: Callable[[Sequence[float]], float]
    #: How one term combines an edge's two weights.
    term: Callable[[float, float], float]


SYNOPSIS: Tuple[SynopsisLine, ...] = (
    SynopsisLine(
        "plus_times",
        "sum of products of edge weights connecting two vertices; computes "
        "the strength of all connections between two connected vertices.",
        sum, lambda a, b: a * b),
    SynopsisLine(
        "max_times",
        "maximum of products of edge weights connecting two vertices; "
        "selects the edge with largest weighted product.",
        max, lambda a, b: a * b),
    SynopsisLine(
        "min_times",
        "minimum of products of edge weights connecting two vertices; "
        "selects the edge with smallest weighted product.",
        min, lambda a, b: a * b),
    SynopsisLine(
        "max_plus",
        "maximum of sum of edge weights connecting two vertices; selects "
        "the edge with largest weighted sum.",
        max, lambda a, b: a + b),
    SynopsisLine(
        "min_plus",
        "minimum of sum of edge weights connecting two vertices; selects "
        "the edge with smallest weighted sum.",
        min, lambda a, b: a + b),
    SynopsisLine(
        "max_min",
        "maximum of the minimum of weights connecting two vertices; "
        "selects the largest of all the shortest connections.",
        max, lambda a, b: min(a, b)),
    SynopsisLine(
        "min_max",
        "minimum of the maximum of weights connecting two vertices; "
        "selects the smallest of all the largest connections.",
        min, lambda a, b: max(a, b)),
)


def _positive_weights(graph: EdgeKeyedDigraph, seed: int
                      ) -> Tuple[Dict[Any, float], Dict[Any, float]]:
    """Strictly positive weights, valid (nonzero) for all seven pairs."""
    import random
    rng = random.Random(seed)
    keys = list(graph.edge_keys)
    return ({k: float(rng.randint(1, 9)) for k in keys},
            {k: float(rng.randint(1, 9)) for k in keys})


def validate_synopsis(
    *,
    n_vertices: int = 8,
    n_edges: int = 30,
    seeds: Sequence[int] = (11, 12, 13),
) -> List[Tuple[str, bool, str]]:
    """Check every synopsis line on random weighted multigraphs.

    Returns ``(pair_name, validated, detail)`` rows.  Validation means:
    for every ordered vertex pair (a, b), the adjacency entry equals the
    reference computation over the edge-term list, and the entry is
    absent exactly when no edge runs a → b.
    """
    rows: List[Tuple[str, bool, str]] = []
    for line in SYNOPSIS:
        pair = get_op_pair(line.pair_name)
        ok = True
        detail = ""
        for seed in seeds:
            graph = erdos_renyi_multigraph(n_vertices, n_edges, seed=seed)
            wout, win = _positive_weights(graph, seed + 999)
            eout, ein = incidence_arrays(
                graph, zero=pair.zero, out_values=wout, in_values=win)
            adj = adjacency_array(eout, ein, pair, kernel="generic")
            for a in graph.out_vertices:
                for b in graph.in_vertices:
                    edges = graph.edges_between(a, b)
                    terms = [line.term(wout[k], win[k]) for k in edges]
                    if not edges:
                        if not pair.is_zero(adj.get(a, b)):
                            ok, detail = False, f"spurious entry ({a},{b})"
                    else:
                        want = line.reference(terms)
                        got = adj.get(a, b)
                        if not math.isclose(float(got), float(want),
                                            rel_tol=1e-9):
                            ok = False
                            detail = (f"({a},{b}): got {got}, "
                                      f"reference {want}")
            if not ok:
                break
        rows.append((line.pair_name, ok, detail))
    return rows

"""Run-everything driver and paper-vs-measured reporting.

``python -m repro.experiments.harness`` runs every experiment, prints each
verification, and exits nonzero on any mismatch — the same artifacts the
per-figure benchmarks exercise, in one command.  The EXPERIMENTS.md
"measured" column is produced by :func:`render_report`.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.figures import FigureExperiment, Verification, all_experiments
from repro.experiments.synopsis import validate_synopsis

__all__ = ["ExperimentReport", "run_all", "render_report", "main"]


@dataclass
class ExperimentReport:
    """All verifications plus the synopsis validation rows."""

    verifications: List[Verification]
    synopsis_rows: List[tuple]

    @property
    def all_matched(self) -> bool:
        return (all(v.matched for v in self.verifications)
                and all(ok for (_n, ok, _d) in self.synopsis_rows))

    def summary_rows(self) -> List[tuple]:
        """``(experiment, matched)`` rows for tabulation."""
        rows = [(v.experiment, v.matched) for v in self.verifications]
        rows.append(("synopsis",
                     all(ok for (_n, ok, _d) in self.synopsis_rows)))
        return rows


def run_all(
    experiments: Optional[Sequence[FigureExperiment]] = None,
) -> ExperimentReport:
    """Run and verify every experiment plus the synopsis validation."""
    exps = list(experiments) if experiments is not None else all_experiments()
    verifications = [e.verify() for e in exps]
    synopsis_rows = validate_synopsis()
    return ExperimentReport(verifications=verifications,
                            synopsis_rows=synopsis_rows)


def render_report(report: ExperimentReport) -> str:
    """Full text report: per-experiment checks + synopsis table."""
    lines: List[str] = ["Paper-vs-measured verification", "=" * 31, ""]
    for v in report.verifications:
        lines.append(v.describe())
        lines.append("")
    lines.append("Section IV synopsis validation")
    lines.append("-" * 30)
    for name, ok, detail in report.synopsis_rows:
        mark = "ok " if ok else "FAIL"
        suffix = f" — {detail}" if detail else ""
        lines.append(f"  [{mark}] {name}{suffix}")
    lines.append("")
    lines.append("ALL MATCHED" if report.all_matched else "MISMATCHES FOUND")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run everything, print, return exit status."""
    report = run_all()
    print(render_report(report))
    return 0 if report.all_matched else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

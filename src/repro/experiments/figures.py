"""Experiment objects, one per paper artifact.

Each experiment knows how to *run* (produce the artifact from the library's
public API), what the paper *expects* (from
:mod:`repro.experiments.expected`), and how to *verify* the two against
each other.  The harness and the per-figure benchmarks drive these; the
test suite asserts ``verify().matched`` for every one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.arrays.associative import AssociativeArray
from repro.arrays.printing import format_array, format_stacked
from repro.core.certify import certify
from repro.core.construction import correlate, reverse_adjacency_array
from repro.datasets.documents import (
    example_word_sets,
    expected_shared_adjacency,
    shared_word_incidence,
)
from repro.datasets.music import (
    music_e1,
    music_e1_weighted,
    music_e2,
    music_incidence,
)
from repro.experiments import expected as X
from repro.graphs.generators import erdos_renyi_multigraph, random_incidence_values
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair

__all__ = [
    "Verification",
    "FigureExperiment",
    "Figure1Experiment",
    "Figure2Experiment",
    "Figure3Experiment",
    "Figure4Experiment",
    "Figure5Experiment",
    "CriteriaTableExperiment",
    "ReverseGraphExperiment",
    "StructuredUnionIntersectionExperiment",
    "all_experiments",
]


@dataclass
class Verification:
    """Outcome of checking one experiment against the paper."""

    experiment: str
    matched: bool
    checks: List[Tuple[str, bool, str]] = field(default_factory=list)

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, bool(ok), detail))
        self.matched = self.matched and bool(ok)

    def describe(self) -> str:
        lines = [f"{self.experiment}: "
                 + ("MATCH" if self.matched else "MISMATCH")]
        for name, ok, detail in self.checks:
            mark = "ok " if ok else "FAIL"
            suffix = f" — {detail}" if detail else ""
            lines.append(f"  [{mark}] {name}{suffix}")
        return "\n".join(lines)


class FigureExperiment:
    """Base protocol: ``run`` → artifacts, ``verify`` → Verification."""

    #: Experiment id used in DESIGN.md's index and in EXPERIMENTS.md.
    name: str = "experiment"
    #: One-line description of the paper artifact.
    title: str = ""

    def run(self) -> Dict[str, Any]:
        """Produce the artifact(s) from the library's public API."""
        raise NotImplementedError

    def verify(self) -> Verification:
        """Compare :meth:`run` output against the paper's expectation."""
        raise NotImplementedError

    def render(self) -> str:
        """Human-readable rendition (the 'regenerated figure')."""
        raise NotImplementedError


def _stored_table(arr: AssociativeArray) -> Dict[Tuple[Any, Any], float]:
    """Stored entries as a plain {(row, col): float} dict for comparison."""
    return {rc: float(v) for rc, v in arr.to_dict().items()}


def _tables_equal(a: Dict, b: Dict, *, tol: float = 1e-9) -> bool:
    if set(a) != set(b):
        return False
    for k, v in a.items():
        w = b[k]
        if math.isinf(v) or math.isinf(w):
            if v != w:
                return False
        elif not math.isclose(float(v), float(w), rel_tol=tol, abs_tol=tol):
            return False
    return True


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

class Figure1Experiment(FigureExperiment):
    """Figure 1: the exploded music array ``E`` (22 × 31, 186 nonzeros)."""

    name = "fig1"
    title = "D4M sparse associative array E of the music table"

    def run(self) -> Dict[str, Any]:
        return {"E": music_incidence()}

    def verify(self) -> Verification:
        e = self.run()["E"]
        v = Verification(self.name, True)
        v.add("row keys", tuple(e.row_keys) == X.FIG1_ROW_KEYS,
              f"{len(e.row_keys)} rows")
        v.add("column keys", tuple(e.col_keys) == X.FIG1_COL_KEYS,
              f"{len(e.col_keys)} columns")
        counts: Dict[str, int] = {r: 0 for r in e.row_keys}
        for (r, _c) in e.nonzero_pattern():
            counts[r] += 1
        v.add("per-row nonzero counts", counts == X.FIG1_ROW_COUNTS)
        v.add("total nonzeros", e.nnz == X.FIG1_NNZ, f"nnz={e.nnz}")
        v.add("all values are 1", all(val == 1 for val in e.to_dict().values()))
        return v

    def render(self) -> str:
        return format_array(self.run()["E"], title="Figure 1: E",
                            max_col_width=18)


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------

class Figure2Experiment(FigureExperiment):
    """Figure 2: ``E1 = E(:, 'Genre|A : Genre|Z')``,
    ``E2 = E(:, 'Writer|A : Writer|Z')``."""

    name = "fig2"
    title = "Incidence sub-arrays E1 (genres) and E2 (writers)"

    def run(self) -> Dict[str, Any]:
        e = music_incidence()
        return {
            "E1": e.select(":", "Genre|A : Genre|Z"),
            "E2": e.select(":", "Writer|A : Writer|Z"),
        }

    def verify(self) -> Verification:
        arts = self.run()
        e1, e2 = arts["E1"], arts["E2"]
        v = Verification(self.name, True)
        expected_e1 = {(t, g) for t, gs in X.FIG2_E1_PATTERN.items()
                       for g in gs}
        expected_e2 = {(t, w) for t, ws in X.FIG2_E2_PATTERN.items()
                       for w in ws}
        v.add("E1 pattern", e1.nonzero_pattern() == frozenset(expected_e1),
              f"nnz={e1.nnz}")
        v.add("E2 pattern", e2.nonzero_pattern() == frozenset(expected_e2),
              f"nnz={e2.nnz}")
        v.add("E1 unit values", all(val == 1 for val in e1.to_dict().values()))
        v.add("E2 unit values", all(val == 1 for val in e2.to_dict().values()))
        v.add("E1 columns", tuple(e1.col_keys) == (
            "Genre|Electronic", "Genre|Pop", "Genre|Rock"))
        v.add("E2 columns", tuple(e2.col_keys) == (
            "Writer|Barrett Rich", "Writer|Chad Anderson",
            "Writer|Chloe Chaidez", "Writer|Julian Chaidez",
            "Writer|Nicholas Johns"))
        # Selection must preserve the full row key set (tracks with no
        # genre/writer entries keep empty rows — E2's writerless track).
        v.add("E1/E2 keep all 22 track rows",
              len(e1.row_keys) == 22 and len(e2.row_keys) == 22)
        return v

    def render(self) -> str:
        arts = self.run()
        return (format_array(arts["E1"], title="Figure 2: E1",
                             max_col_width=18)
                + "\n\n"
                + format_array(arts["E2"], title="Figure 2: E2",
                               max_col_width=22))


# ---------------------------------------------------------------------------
# Figures 3 and 5 (shared machinery)
# ---------------------------------------------------------------------------

def _figure_products(e1: AssociativeArray,
                     e2: AssociativeArray) -> Dict[str, AssociativeArray]:
    """``E1ᵀ ⊕.⊗ E2`` for the seven Figure 3/5 op-pairs.

    Arrays are reinterpreted over each pair's zero first (Figure 3's
    "respective values of zero be it 0, −∞, or ∞").
    """
    out: Dict[str, AssociativeArray] = {}
    for name in ("plus_times", "max_times", "min_times", "max_plus",
                 "min_plus", "max_min", "min_max"):
        pair = get_op_pair(name)
        a = e1 if pair.is_zero(0) else e1.with_zero(pair.zero)
        b = e2 if pair.is_zero(0) else e2.with_zero(pair.zero)
        out[name] = correlate(a, b, pair)
    return out


class _ProductFigure(FigureExperiment):
    """Shared implementation for Figures 3 and 5."""

    expected_tables: Dict[str, Dict[Tuple[str, str], float]] = {}

    def _operands(self) -> Tuple[AssociativeArray, AssociativeArray]:
        raise NotImplementedError

    def run(self) -> Dict[str, Any]:
        e1, e2 = self._operands()
        return dict(_figure_products(e1, e2))

    def verify(self) -> Verification:
        arts = self.run()
        v = Verification(self.name, True)
        for name, expected in self.expected_tables.items():
            got = _stored_table(arts[name])
            v.add(f"{name} table", _tables_equal(got, expected),
                  f"{len(got)} entries")
        # Stacking claim: pairs the paper displays stacked agree exactly.
        for stack in X.FIG35_STACKS:
            first = _stored_table(arts[stack[0]])
            for other in stack[1:]:
                v.add(f"stack {stack[0]} == {other}",
                      _tables_equal(first, _stored_table(arts[other])))
        return v

    def render(self) -> str:
        arts = self.run()
        blocks = []
        for stack in X.FIG35_STACKS:
            label = " = ".join(get_op_pair(n).display for n in stack)
            blocks.append((f"E1ᵀ {label} E2", arts[stack[0]]))
        return format_stacked(blocks, title=self.title)


class Figure3Experiment(_ProductFigure):
    """Figure 3: seven semiring products of the unit-valued E1, E2."""

    name = "fig3"
    title = "Figure 3: E1ᵀ ⊕.⊗ E2 under seven op-pairs (unit values)"
    expected_tables = X.FIG3_TABLES

    def _operands(self) -> Tuple[AssociativeArray, AssociativeArray]:
        return music_e1(), music_e2()


class Figure4Experiment(FigureExperiment):
    """Figure 4: E1 re-weighted (Electronic 1, Pop 2, Rock 3)."""

    name = "fig4"
    title = "Figure 4: weighted incidence array E1"

    def run(self) -> Dict[str, Any]:
        return {"E1w": music_e1_weighted(), "E2": music_e2()}

    def verify(self) -> Verification:
        arts = self.run()
        e1w, e2 = arts["E1w"], arts["E2"]
        v = Verification(self.name, True)
        got = {rc: int(val) for rc, val in e1w.to_dict().items()}
        v.add("E1 weighted values", got == X.FIG4_E1_VALUES,
              f"nnz={len(got)}")
        unit_e1 = music_e1()
        v.add("pattern unchanged from Figure 2",
              e1w.nonzero_pattern() == unit_e1.nonzero_pattern())
        expected_e2 = {(t, w) for t, ws in X.FIG2_E2_PATTERN.items()
                       for w in ws}
        v.add("E2 unchanged", e2.nonzero_pattern() == frozenset(expected_e2)
              and all(val == 1 for val in e2.to_dict().values()))
        return v

    def render(self) -> str:
        return format_array(self.run()["E1w"], title="Figure 4: weighted E1",
                            max_col_width=18)


class Figure5Experiment(_ProductFigure):
    """Figure 5: the seven products with Figure 4's weighted E1."""

    name = "fig5"
    title = "Figure 5: E1ᵀ ⊕.⊗ E2 under seven op-pairs (weighted E1)"
    expected_tables = X.FIG5_TABLES

    def _operands(self) -> Tuple[AssociativeArray, AssociativeArray]:
        return music_e1_weighted(), music_e2()


# ---------------------------------------------------------------------------
# Criteria table (Theorem II.1 / Section III)
# ---------------------------------------------------------------------------

class CriteriaTableExperiment(FigureExperiment):
    """Section III's examples/non-examples as a certification table."""

    name = "criteria"
    title = "Theorem II.1 certification of the op-pair catalog"

    SEED = 20170225  # arXiv posting date of the paper

    def run(self) -> Dict[str, Any]:
        out = {}
        for name in X.CRITERIA_TABLE:
            out[name] = certify(get_op_pair(name), seed=self.SEED)
        return out

    def verify(self) -> Verification:
        certs = self.run()
        v = Verification(self.name, True)
        for name, (want_safe, want_criterion) in X.CRITERIA_TABLE.items():
            cert = certs[name]
            v.add(f"{name} safe={want_safe}", cert.safe == want_safe)
            if not want_safe:
                violation = cert.criteria.first_violation()
                v.add(f"{name} violates {want_criterion!r}",
                      violation is not None
                      and violation.property_name == want_criterion,
                      "" if violation is None else violation.property_name)
                v.add(f"{name} witness refutes",
                      cert.witness is not None and cert.witness.refutes)
        return v

    def render(self) -> str:
        certs = self.run()
        lines = [self.title, "=" * len(self.title)]
        for name, cert in certs.items():
            lines.append("")
            lines.append(cert.summary())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Corollary III.1
# ---------------------------------------------------------------------------

class ReverseGraphExperiment(FigureExperiment):
    """Corollary III.1: ``EinᵀEout`` is an adjacency array of the reverse."""

    name = "reverse"
    title = "Corollary III.1 on random multigraphs"

    SEEDS = (1, 2, 3, 4, 5)

    def run(self) -> Dict[str, Any]:
        from repro.core.construction import is_adjacency_array_of_graph
        results = {}
        pair = get_op_pair("plus_times")
        for seed in self.SEEDS:
            g = erdos_renyi_multigraph(8, 20, seed=seed)
            ow, iw = random_incidence_values(g, pair, seed=seed + 100)
            eout, ein = incidence_arrays(g, out_values=ow, in_values=iw)
            rev = reverse_adjacency_array(eout, ein, pair)
            results[f"seed{seed}"] = (rev, g.reverse(),
                                      is_adjacency_array_of_graph(
                                          rev, g.reverse()))
        return results

    def verify(self) -> Verification:
        v = Verification(self.name, True)
        for key, (_rev, _gr, ok) in self.run().items():
            v.add(f"{key}: EinᵀEout is adjacency of reverse(G)", ok)
        return v

    def render(self) -> str:
        rev, _gr, _ok = self.run()["seed1"]
        return format_array(rev, title="EinᵀEout for seed 1 (reverse graph)")


# ---------------------------------------------------------------------------
# Section III structured ∪.∩ exemption
# ---------------------------------------------------------------------------

class StructuredUnionIntersectionExperiment(FigureExperiment):
    """Structured document×word data rescues the uncertified ``∪.∩``."""

    name = "structured"
    title = "Section III: ∪.∩ on shared-word document arrays"

    def run(self) -> Dict[str, Any]:
        words = example_word_sets()
        e = shared_word_incidence(words)
        pair = get_op_pair("union_intersection")
        # Reinterpret over the pair's zero (∅ already) and multiply.
        product = correlate(e, e, pair)
        return {
            "E": e,
            "product": product,
            "expected": expected_shared_adjacency(words),
        }

    def verify(self) -> Verification:
        arts = self.run()
        v = Verification(self.name, True)
        prod, exp = arts["product"], arts["expected"]
        v.add("EᵀE pattern equals shared-word pattern",
              prod.same_pattern(exp))
        v.add("entries are exactly the shared word sets",
              all(frozenset(prod.get(r, c)) == frozenset(exp.get(r, c))
                  for (r, c) in exp.nonzero_pattern()))
        cert = certify(get_op_pair("union_intersection"), seed=7)
        v.add("∪.∩ itself remains uncertified", not cert.safe)
        return v

    def render(self) -> str:
        arts = self.run()
        return format_array(arts["product"],
                            title="EᵀE over ∪.∩ (shared words)",
                            max_col_width=26)


def all_experiments() -> List[FigureExperiment]:
    """Every experiment, in DESIGN.md index order."""
    return [
        Figure1Experiment(),
        Figure2Experiment(),
        Figure3Experiment(),
        Figure4Experiment(),
        Figure5Experiment(),
        CriteriaTableExperiment(),
        ReverseGraphExperiment(),
        StructuredUnionIntersectionExperiment(),
    ]

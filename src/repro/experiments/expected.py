"""The paper's figures as hard-coded expected data.

Everything below is transcribed from the paper (arXiv:1702.07832) — the
row/column key inventories of Figure 1, the ``E1``/``E2`` patterns of
Figure 2, the re-weighted values of Figure 4, and the full value tables of
Figures 3 and 5.  Two cells rest on documented reconstruction inferences
(DESIGN.md §4): the placement of the Rock row's trailing ``1`` under
Nicholas Johns, and track ``093012ktnA8``'s genres.

The tests and the experiment harness compare library *outputs* against
these constants; nothing here imports from :mod:`repro.datasets`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.arrays.associative import AssociativeArray

__all__ = [
    "FIG1_ROW_KEYS",
    "FIG1_COL_KEYS",
    "FIG1_ROW_COUNTS",
    "FIG1_NNZ",
    "FIG2_E1_PATTERN",
    "FIG2_E2_PATTERN",
    "FIG4_E1_VALUES",
    "FIG3_TABLES",
    "FIG5_TABLES",
    "FIG35_STACKS",
    "CRITERIA_TABLE",
    "expected_array",
]

# ---------------------------------------------------------------------------
# Figure 1: the exploded music array E
# ---------------------------------------------------------------------------

FIG1_ROW_KEYS: Tuple[str, ...] = (
    "031013ktnA1",
    "053013ktnA1", "053013ktnA2",
    "063012ktnA1", "063012ktnA2", "063012ktnA3", "063012ktnA4", "063012ktnA5",
    "082812ktnA1", "082812ktnA2", "082812ktnA3", "082812ktnA4",
    "082812ktnA5", "082812ktnA6",
    "093012ktnA1", "093012ktnA2", "093012ktnA3", "093012ktnA4",
    "093012ktnA5", "093012ktnA6", "093012ktnA7", "093012ktnA8",
)

FIG1_COL_KEYS: Tuple[str, ...] = (
    "Artist|Bandayde", "Artist|Kastle", "Artist|Kitten",
    "Date|2010-06-30", "Date|2012-08-28", "Date|2012-09-16",
    "Date|2013-05-30", "Date|2013-09-30", "Date|2013-10-03",
    "Genre|Electronic", "Genre|Pop", "Genre|Rock",
    "Label|Atlantic", "Label|Elektra Records", "Label|Free",
    "Label|The Control Group",
    "Release|Cut It Out", "Release|Cut It Out Remixes",
    "Release|Cut It Out/Sugar", "Release|Japanese Eyes",
    "Release|Kill The Light", "Release|Like A Stranger",
    "Release|Yesterday",
    "Type|EP", "Type|LP", "Type|Single",
    "Writer|Barrett Rich", "Writer|Chad Anderson", "Writer|Chloe Chaidez",
    "Writer|Julian Chaidez", "Writer|Nicholas Johns",
)

#: Per-row nonzero counts read off Figure 1.
FIG1_ROW_COUNTS: Dict[str, int] = {
    "031013ktnA1": 10,
    "053013ktnA1": 9, "053013ktnA2": 7,
    "063012ktnA1": 8, "063012ktnA2": 8, "063012ktnA3": 8,
    "063012ktnA4": 8, "063012ktnA5": 8,
    "082812ktnA1": 9, "082812ktnA2": 8, "082812ktnA3": 8,
    "082812ktnA4": 8, "082812ktnA5": 9, "082812ktnA6": 8,
    "093012ktnA1": 9, "093012ktnA2": 9, "093012ktnA3": 10,
    "093012ktnA4": 9, "093012ktnA5": 9, "093012ktnA6": 9,
    "093012ktnA7": 9, "093012ktnA8": 6,
}

FIG1_NNZ = sum(FIG1_ROW_COUNTS.values())  # = 186

# ---------------------------------------------------------------------------
# Figure 2: the incidence sub-array patterns
# ---------------------------------------------------------------------------

#: E1 pattern: track → genre columns (Figure 2 left table; unit values).
FIG2_E1_PATTERN: Dict[str, Tuple[str, ...]] = {
    "031013ktnA1": ("Genre|Rock",),
    "053013ktnA1": ("Genre|Electronic",),
    "053013ktnA2": ("Genre|Electronic",),
    "063012ktnA1": ("Genre|Rock",),
    "063012ktnA2": ("Genre|Rock",),
    "063012ktnA3": ("Genre|Rock",),
    "063012ktnA4": ("Genre|Rock",),
    "063012ktnA5": ("Genre|Rock",),
    "082812ktnA1": ("Genre|Pop",),
    "082812ktnA2": ("Genre|Pop",),
    "082812ktnA3": ("Genre|Pop",),
    "082812ktnA4": ("Genre|Pop",),
    "082812ktnA5": ("Genre|Pop",),
    "082812ktnA6": ("Genre|Pop",),
    "093012ktnA1": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA2": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA3": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA4": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA5": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA6": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA7": ("Genre|Electronic", "Genre|Pop"),
    "093012ktnA8": ("Genre|Electronic", "Genre|Pop"),
}

_BR = "Writer|Barrett Rich"
_CA = "Writer|Chad Anderson"
_CC = "Writer|Chloe Chaidez"
_JC = "Writer|Julian Chaidez"
_NJ = "Writer|Nicholas Johns"

#: E2 pattern: track → writer columns (Figure 2 right table; unit values).
#: Track 093012ktnA8 has no writers (its row is absent from the display).
FIG2_E2_PATTERN: Dict[str, Tuple[str, ...]] = {
    "031013ktnA1": (_CA, _CC, _NJ),
    "053013ktnA1": (_BR, _JC),
    "053013ktnA2": (_NJ,),
    "063012ktnA1": (_CA, _CC),
    "063012ktnA2": (_CA, _CC),
    "063012ktnA3": (_CA, _CC),
    "063012ktnA4": (_CA, _CC),
    "063012ktnA5": (_CA, _CC),
    "082812ktnA1": (_CA, _CC, _JC),
    "082812ktnA2": (_CA, _CC),
    "082812ktnA3": (_CA, _CC),
    "082812ktnA4": (_CA, _CC),
    "082812ktnA5": (_CA, _CC, _JC),
    "082812ktnA6": (_CA, _CC),
    "093012ktnA1": (_CA, _CC),
    "093012ktnA2": (_CA, _CC),
    "093012ktnA3": (_CA, _CC, _JC),
    "093012ktnA4": (_CA, _CC),
    "093012ktnA5": (_CA, _CC),
    "093012ktnA6": (_CA, _CC),
    "093012ktnA7": (_CA, _CC),
    "093012ktnA8": (),
}

# ---------------------------------------------------------------------------
# Figure 4: re-weighted E1
# ---------------------------------------------------------------------------

_GENRE_WEIGHT = {"Genre|Electronic": 1, "Genre|Pop": 2, "Genre|Rock": 3}

#: E1 values after Figure 4's substitution (pattern unchanged from Fig. 2).
FIG4_E1_VALUES: Dict[Tuple[str, str], int] = {
    (track, genre): _GENRE_WEIGHT[genre]
    for track, genres in FIG2_E1_PATTERN.items()
    for genre in genres
}

# ---------------------------------------------------------------------------
# Figures 3 and 5: adjacency tables per op-pair
# ---------------------------------------------------------------------------

_E = "Genre|Electronic"
_P = "Genre|Pop"
_R = "Genre|Rock"

def _table(elec, pop, rock) -> Dict[Tuple[str, str], float]:
    """Build a genre×writer table from per-row value lists.

    ``elec`` covers (BR, CA, CC, JC, NJ); ``pop`` covers (CA, CC, JC);
    ``rock`` covers (CA, CC, NJ) — the patterns shared by every op-pair in
    Figures 3 and 5.
    """
    out: Dict[Tuple[str, str], float] = {}
    for col, v in zip((_BR, _CA, _CC, _JC, _NJ), elec):
        out[(_E, col)] = v
    for col, v in zip((_CA, _CC, _JC), pop):
        out[(_P, col)] = v
    for col, v in zip((_CA, _CC, _NJ), rock):
        out[(_R, col)] = v
    return out


#: Figure 3 (unit-valued E1, E2): op-pair name → expected table.
FIG3_TABLES: Dict[str, Dict[Tuple[str, str], float]] = {
    "plus_times": _table((1, 7, 7, 2, 1), (13, 13, 3), (6, 6, 1)),
    "max_times": _table((1, 1, 1, 1, 1), (1, 1, 1), (1, 1, 1)),
    "min_times": _table((1, 1, 1, 1, 1), (1, 1, 1), (1, 1, 1)),
    "max_plus": _table((2, 2, 2, 2, 2), (2, 2, 2), (2, 2, 2)),
    "min_plus": _table((2, 2, 2, 2, 2), (2, 2, 2), (2, 2, 2)),
    "max_min": _table((1, 1, 1, 1, 1), (1, 1, 1), (1, 1, 1)),
    "min_max": _table((1, 1, 1, 1, 1), (1, 1, 1), (1, 1, 1)),
}

#: Figure 5 (Figure 4's weighted E1 against unit E2).
FIG5_TABLES: Dict[str, Dict[Tuple[str, str], float]] = {
    "plus_times": _table((1, 7, 7, 2, 1), (26, 26, 6), (18, 18, 3)),
    "max_times": _table((1, 1, 1, 1, 1), (2, 2, 2), (3, 3, 3)),
    "min_times": _table((1, 1, 1, 1, 1), (2, 2, 2), (3, 3, 3)),
    "max_plus": _table((2, 2, 2, 2, 2), (3, 3, 3), (4, 4, 4)),
    "min_plus": _table((2, 2, 2, 2, 2), (3, 3, 3), (4, 4, 4)),
    "max_min": _table((1, 1, 1, 1, 1), (1, 1, 1), (1, 1, 1)),
    "min_max": _table((1, 1, 1, 1, 1), (2, 2, 2), (3, 3, 3)),
}

#: The stacking the figures display ("operator pairs that produce the same
#: values ... are stacked"), top to bottom.
FIG35_STACKS: Tuple[Tuple[str, ...], ...] = (
    ("plus_times",),
    ("max_times", "min_times"),
    ("max_plus", "min_plus"),
    ("max_min",),
    ("min_max",),
)

# ---------------------------------------------------------------------------
# Section III: expected certification verdicts
# ---------------------------------------------------------------------------

#: op-pair name → (expected_safe, criterion expected to fail or None).
CRITERIA_TABLE: Dict[str, Tuple[bool, str]] = {
    "plus_times": (True, ""),
    "nat_plus_times": (True, ""),
    "max_times": (True, ""),
    "min_times": (True, ""),
    "max_plus": (True, ""),
    "min_plus": (True, ""),
    "max_min": (True, ""),
    "min_max": (True, ""),
    "or_and": (True, ""),
    "string_max_min": (True, ""),
    "gcd_lcm": (True, ""),
    "max_concat": (True, ""),
    "union_intersection": (False, "no zero divisors"),
    "completed_max_plus": (False, "0 annihilates ⊗"),
    "nonneg_max_plus": (False, "0 annihilates ⊗"),
    "int_plus_times": (False, "zero-sum-free"),
    "gf2_xor_and": (False, "zero-sum-free"),
    "z6_plus_times": (False, "zero-sum-free"),
}


def expected_array(
    table: Dict[Tuple[str, str], float],
    *,
    zero: float = 0,
) -> AssociativeArray:
    """Materialise one of the FIG3/FIG5 tables as an associative array
    over the full genre × writer key sets."""
    return AssociativeArray(
        dict(table),
        row_keys=(_E, _P, _R),
        col_keys=(_BR, _CA, _CC, _JC, _NJ),
        zero=zero,
    )

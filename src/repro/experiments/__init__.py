"""Experiment harness: one reproducible experiment per paper artifact.

* :mod:`repro.experiments.expected` — the paper's tables, hard-coded;
* :mod:`repro.experiments.figures` — experiment objects for Figures 1–5,
  the criteria table and the structured ``∪.∩`` exemption;
* :mod:`repro.experiments.synopsis` — programmatic validation of the
  Section IV synopsis (what each op-pair computes);
* :mod:`repro.experiments.harness` — run-everything driver producing the
  paper-vs-measured report behind EXPERIMENTS.md.
"""

from repro.experiments.figures import (
    CriteriaTableExperiment,
    Figure1Experiment,
    Figure2Experiment,
    Figure3Experiment,
    Figure4Experiment,
    Figure5Experiment,
    ReverseGraphExperiment,
    StructuredUnionIntersectionExperiment,
    all_experiments,
)
from repro.experiments.harness import ExperimentReport, run_all, render_report

__all__ = [
    "Figure1Experiment",
    "Figure2Experiment",
    "Figure3Experiment",
    "Figure4Experiment",
    "Figure5Experiment",
    "CriteriaTableExperiment",
    "ReverseGraphExperiment",
    "StructuredUnionIntersectionExperiment",
    "all_experiments",
    "ExperimentReport",
    "run_all",
    "render_report",
]

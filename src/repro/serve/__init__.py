"""Concurrent adjacency query service with snapshot isolation.

The read path of the system: adjacency arrays exist so downstream
queries — neighbors, degrees, k-hop frontiers via semiring
vector–matrix products, path lengths, top-k edges — can run against
them.  This package serves those queries under heavy concurrent
traffic while edges keep streaming in:

* :mod:`repro.serve.snapshot` — :class:`Snapshot`, the immutable
  epoch-stamped read view (square adjacency array + per-snapshot
  CSR/CSC-backed query indexes);
* :mod:`repro.serve.cache` — :class:`QueryCache`, the LRU keyed on
  ``(epoch, query)`` with hit/miss/latency counters (structurally
  incapable of serving a stale epoch);
* :mod:`repro.serve.service` — :class:`AdjacencyService`, the versioned
  read API plus the delta-buffer → ⊕-merge → atomic-publish write path
  (certification-gated like the shard engine it reuses);
* :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer`` JSON
  front end behind ``repro serve`` / ``repro query``.
"""

from repro.serve.cache import QueryCache
from repro.serve.http import DEFAULT_PORT, build_server, serve_forever
from repro.serve.service import QUERY_KINDS, AdjacencyService
from repro.serve.snapshot import ServeError, Snapshot, UnknownVertexError

__all__ = [
    "AdjacencyService",
    "DEFAULT_PORT",
    "QUERY_KINDS",
    "QueryCache",
    "ServeError",
    "Snapshot",
    "UnknownVertexError",
    "build_server",
    "serve_forever",
]

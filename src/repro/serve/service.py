"""``AdjacencyService`` — concurrent adjacency queries over epochs.

The read path the paper implies but the library so far lacked: once
``A = Eoutᵀ ⊕.⊗ Ein`` is constructed, downstream consumers ask it
questions — neighbors, degrees, k-hop frontiers (semiring
vector–matrix products, per GraphBLAS' foundations), path lengths,
top-k edges.  This module packages those questions behind one object
that is safe to share across reader threads while edges keep arriving:

* **Sources** — an adjacency TSV-triple file (``repro build`` output),
  an on-disk shard-manifest workdir (executed and ⊕-merged on load), a
  live :class:`~repro.core.streaming.StreamingAdjacencyBuilder`, or any
  in-memory :class:`~repro.arrays.associative.AssociativeArray`.
* **Epoch-based snapshot isolation** — readers answer from an immutable
  :class:`~repro.serve.snapshot.Snapshot`; a writer buffers streaming
  edge deltas in a :class:`StreamingAdjacencyBuilder` and
  :meth:`~AdjacencyService.publish` folds the delta into the next
  epoch's array with the shard ⊕-merge machinery
  (:func:`repro.shard.merge.oplus_union`), then atomically swaps the
  snapshot reference.  Reads never block on ingest; the merge identity
  is exactly the paper's edge-partition decomposition, so the published
  array equals batch construction over all edges ever ingested (gated
  by the same certification as the shard engine).
* **Query caching** — results are memoised in an LRU keyed on
  ``(epoch, query)`` (:class:`~repro.serve.cache.QueryCache`), so the
  cache can never serve a stale epoch; publication invalidates
  superseded entries.  Hit/miss/latency counters surface through the
  ``stats`` query.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.arrays.associative import AssociativeArray
from repro.arrays.io import iter_tsv_triples
from repro.core.certify import Certification, certify
from repro.core.streaming import StreamingAdjacencyBuilder
from repro.expr import khop_frontier, vecmat
from repro.graphs.algorithms import shortest_path_lengths
from repro.graphs.digraph import GraphError
from repro.obs.events import emit_event
from repro.obs.loadgen import WorkloadRecorder
from repro.obs.metrics import LATENCY_BUCKETS_WIDE, MetricsRegistry
from repro.obs.profile import heap_delta
from repro.obs.trace import Tracer, span
from repro.serve.cache import QueryCache
from repro.serve.snapshot import ServeError, Snapshot, UnknownVertexError
from repro.shard.executor import execute_shards
from repro.shard.manifest import ShardError, ShardManifest
from repro.shard.merge import check_merge_safety, merge_spilled, oplus_union
from repro.values.semiring import OpPair, SemiringError, get_op_pair

__all__ = ["QUERY_KINDS", "AdjacencyService"]

#: The query vocabulary of the versioned read API (and the HTTP routes).
QUERY_KINDS = ("neighbors", "degrees", "khop", "path_lengths", "top_k",
               "stats")

_DIRECTIONS = ("out", "in")


class AdjacencyService:
    """Thread-safe adjacency query service with epoch snapshots.

    Parameters
    ----------
    op_pair:
        The ``⊕.⊗`` algebra the adjacency array was (and deltas will
        be) constructed over.  Certified at construction with the same
        gate as the shard merge tree — publication re-associates and
        reorders the edge-key fold, so ``⊕`` must be associative and
        commutative on top of the Theorem II.1 criteria — unless
        ``unsafe_ok``.
    initial:
        Optional initial adjacency array (epoch 0).  Default: empty.
    cache_size:
        LRU capacity of the query cache (0 disables caching).
    max_khop:
        Upper bound on the ``k`` of k-hop queries (default 256) — the
        service answers unauthenticated HTTP traffic, and an unbounded
        ``k`` would let one request pin a thread on ``k`` vector–matrix
        products.
    unsafe_ok:
        Accept non-compliant pairs; epoch merges are then *not*
        guaranteed to equal batch construction.
    certification:
        A precomputed certification for ``op_pair``, reused instead of
        re-running the criteria search (the manifest loader certifies
        once up front).
    registry:
        The :class:`~repro.obs.metrics.MetricsRegistry` this service's
        instruments (request counts/latency per kind, publication
        timings, epoch/snapshot-age gauges, cache counters) live on.
        Default: a fresh per-service registry — counts never bleed
        across service instances; ``GET /metrics`` renders it together
        with the process-global registry.
    tracer:
        The :class:`~repro.obs.trace.Tracer` that records this
        service's query traces (``GET /trace/<id>``, ``repro trace``).
        Default: a fresh per-service tracer.

    Examples
    --------
    >>> from repro.values.semiring import get_op_pair
    >>> svc = AdjacencyService(get_op_pair("plus_times"))
    >>> svc.add_edge("e1", "alice", "bob", 2.0)
    >>> svc.publish()
    1
    >>> svc.query("neighbors", vertex="alice")["result"]
    {'bob': 2.0}
    """

    def __init__(
        self,
        op_pair: OpPair,
        *,
        initial: Optional[AssociativeArray] = None,
        cache_size: int = 1024,
        max_khop: int = 256,
        unsafe_ok: bool = False,
        certification_seed: int = 0xD4,
        certification: Optional[Certification] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_khop < 1:
            raise ServeError(f"max_khop must be >= 1, got {max_khop}")
        self._pair = op_pair
        self._unsafe_ok = unsafe_ok
        self.max_khop = max_khop
        try:
            self._certification = check_merge_safety(
                op_pair, unsafe_ok=unsafe_ok,
                certification=certification,
                certification_seed=certification_seed)
        except ShardError as exc:
            raise ServeError(str(exc)) from None
        if initial is None:
            initial = AssociativeArray({}, zero=op_pair.zero)
        self._snapshot = Snapshot.from_array(initial, epoch=0)
        self.metrics = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self._cache = QueryCache(cache_size, registry=self.metrics)
        self._write_lock = threading.RLock()
        self._delta: Optional[StreamingAdjacencyBuilder] = None
        self._started = time.time()
        #: Span summary of the most recent :meth:`publish` (``None``
        #: until the first); surfaced under ``stats["last_publication"]``
        #: so the cross-link from ``/stats`` to ``/trace/<id>`` exists
        #: without scraping the exposition text.
        self._last_publication: Optional[Dict[str, Any]] = None
        #: Installed workload recorder (:meth:`start_capture`), or
        #: ``None``.  One atomic attribute read per query keeps the
        #: off-path cost of capture at a single ``is None`` check.
        self._capture: Optional[WorkloadRecorder] = None
        # Per-service memo of alternative-pair certifications for khop.
        self._pair_certs: Dict[str, Certification] = {}
        if self._certification is not None:
            self._pair_certs[op_pair.name] = self._certification
        # -- named instruments (the serve metrics catalog) -------------
        self._queries_total = self.metrics.counter(
            "serve_queries_total", "Queries answered (all kinds)")
        self._publications_total = self.metrics.counter(
            "serve_publications_total", "Epoch publications")
        self._publish_seconds = self.metrics.histogram(
            "serve_publish_seconds",
            "Epoch publication latency (delta fold + snapshot swap)")
        self._epoch_gauge = self.metrics.gauge(
            "serve_epoch", "Current published epoch")
        self._epoch_gauge.set(0)
        self.metrics.gauge(
            "serve_snapshot_age_seconds",
            "Seconds since the current snapshot was published",
            fn=lambda: time.time() - self._snapshot.published_at)
        self.metrics.gauge(
            "serve_pending_edges", "Buffered delta edges not yet published",
            fn=lambda: self.pending_edges)
        self.metrics.gauge(
            "serve_uptime_seconds", "Seconds since service construction",
            fn=lambda: time.time() - self._started)

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    @classmethod
    def from_tsv(cls, path: Union[str, Path], op_pair: OpPair,
                 **options: Any) -> "AdjacencyService":
        """Serve an adjacency TSV-triple file (``src  dst  value``).

        The natural input is ``repro build`` output; duplicate
        coordinates (e.g. a raw collapsed edge list) are folded through
        the op-pair's ``⊕``, matching streaming semantics.  ``options``
        are constructor keyword arguments.
        """
        array = AssociativeArray.from_triples(
            iter_tsv_triples(path), zero=op_pair.zero,
            combine=op_pair.add)
        return cls(op_pair, initial=array, **options)

    @classmethod
    def from_manifest(
        cls,
        workdir: Union[str, Path],
        op_pair: Optional[OpPair] = None,
        *,
        executor: str = "thread",
        n_workers: int = 4,
        kernel: str = "auto",
        backend: str = "auto",
        **options: Any,
    ) -> "AdjacencyService":
        """Serve a shard-manifest workdir (a kept ``repro build`` set).

        Executes the per-shard construction and the spilled ⊕-merge on
        load (the shard files are left untouched; spills go to a
        temporary directory).  ``op_pair`` defaults to the pair recorded
        in the manifest.
        """
        manifest = ShardManifest.load(workdir)
        if op_pair is None:
            if manifest.op_pair is None:
                raise ServeError(
                    f"manifest in {workdir} records no op-pair; pass one "
                    "explicitly")
            try:
                op_pair = get_op_pair(manifest.op_pair)
            except SemiringError as exc:
                raise ServeError(str(exc)) from None
        unsafe_ok = bool(options.get("unsafe_ok", False))
        try:
            cert = check_merge_safety(op_pair, unsafe_ok=unsafe_ok)
        except ShardError as exc:
            raise ServeError(str(exc)) from None
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as spill:
            products = execute_shards(
                manifest, op_pair, executor=executor, n_workers=n_workers,
                kernel=kernel, backend=backend, workdir=spill)
            adjacency = merge_spilled(
                [p.path for p in products], op_pair, workdir=spill,
                unsafe_ok=True)  # gated above
        return cls(op_pair, initial=adjacency, certification=cert,
                   **options)

    @classmethod
    def from_builder(cls, builder: StreamingAdjacencyBuilder,
                     **options: Any) -> "AdjacencyService":
        """Serve the current state of a live streaming builder.

        The service snapshots ``builder.adjacency()`` (numeric-backed
        when the values qualify) as epoch 0; later edges go through the
        service's own delta/publish cycle.
        """
        return cls(builder.op_pair, initial=builder.adjacency(),
                   **options)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def op_pair(self) -> OpPair:
        """The algebra this service folds deltas over."""
        return self._pair

    @property
    def epoch(self) -> int:
        """The current published epoch."""
        return self._snapshot.epoch

    @property
    def pending_edges(self) -> int:
        """Buffered delta edges not yet published."""
        delta = self._delta
        return delta.num_edges if delta is not None else 0

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the service was constructed."""
        return time.time() - self._started

    @property
    def snapshot_age_seconds(self) -> float:
        """Seconds since the current snapshot was published."""
        return time.time() - self._snapshot.published_at

    def snapshot(self) -> Snapshot:
        """The current immutable snapshot (safe to keep and read)."""
        return self._snapshot

    # ------------------------------------------------------------------
    # Write path: buffer deltas, publish epochs
    # ------------------------------------------------------------------
    def add_edge(self, key: Any, src: Any, dst: Any,
                 out_value: Optional[Any] = None,
                 in_value: Optional[Any] = None) -> None:
        """Buffer one streaming edge for the next epoch.

        Semantics are exactly :meth:`StreamingAdjacencyBuilder.add_edge`
        (``A(src, dst) ⊕= w_out ⊗ w_in``); edge keys must be unique
        within a publication batch.  Readers see nothing until
        :meth:`publish`.
        """
        with self._write_lock:
            if self._delta is None:
                # The service gate already certified the pair; the
                # builder's own gate is skipped rather than re-run per
                # epoch.
                self._delta = StreamingAdjacencyBuilder(
                    self._pair, unsafe_ok=True)
            self._delta.add_edge(key, src, dst, out_value, in_value)

    def add_edges(self, items: Any) -> int:
        """Buffer ``(key, src, dst[, w_out, w_in])`` tuples; returns the
        number buffered."""
        n = 0
        with self._write_lock:
            for item in items:
                if len(item) not in (3, 5):
                    raise GraphError(
                        f"expected 3- or 5-tuples, got {len(item)}-tuple")
                self.add_edge(*item)
                n += 1
        return n

    def publish(self) -> int:
        """Fold the buffered delta into the next epoch and swap it in.

        The delta builder's adjacency array (numeric-backed when values
        qualify) is ⊕-merged with the current snapshot over the union
        vertex set — the paper's edge-partition identity, via the shard
        merge machinery — and the new :class:`Snapshot` is published by
        a single reference assignment.  In-flight readers keep their
        epoch; new queries see the new one.  Cache entries of
        superseded epochs are reclaimed.  A publish with no buffered
        edges is a no-op returning the current epoch.  While a
        memory-accounting profile session is active
        (:func:`repro.obs.profile.heap_delta`), the heap growth of the
        fold/merge/swap is recorded against ``publish_epoch_<n>``.
        """
        with self._write_lock:
            delta = self._delta
            if delta is None or delta.num_edges == 0:
                return self._snapshot.epoch
            started = time.perf_counter()
            stages: Dict[str, float] = {}
            with self.tracer.span("service.publish",
                                  pending=delta.num_edges) as sp, \
                    self._publish_seconds.time(), \
                    heap_delta(f"publish_epoch_{self._snapshot.epoch + 1}"):
                delta_edges = delta.num_edges
                with span("publish.fold_delta", edges=delta_edges):
                    t0 = time.perf_counter()
                    delta_adj = delta.adjacency()
                    stages["fold_delta"] = time.perf_counter() - t0
                base = self._snapshot
                with span("publish.merge", base_nnz=base.nnz,
                          delta_nnz=delta_adj.nnz):
                    t0 = time.perf_counter()
                    merged = oplus_union(base.adjacency, delta_adj,
                                         self._pair)
                    stages["merge"] = time.perf_counter() - t0
                with span("publish.swap"):
                    t0 = time.perf_counter()
                    snapshot = Snapshot.from_array(merged,
                                                   epoch=base.epoch + 1)
                    self._snapshot = snapshot  # the atomic publication point
                    self._delta = None
                    stages["swap"] = time.perf_counter() - t0
                sp.set_attr("epoch", snapshot.epoch)
                trace_id = sp.trace_id
            self._publications_total.inc()
            self._epoch_gauge.set(snapshot.epoch)
            duration = time.perf_counter() - started
            self._last_publication = {
                "epoch": snapshot.epoch,
                "trace_id": trace_id,
                "duration_seconds": duration,
                "delta_edges": delta_edges,
                "delta_nnz": delta_adj.nnz,
                "merged_nnz": snapshot.nnz,
                "published_at": snapshot.published_at,
                "stages": stages,
            }
            # The publish span has already closed, so the trace id rides
            # along as an explicit field rather than the ambient stamp.
            emit_event("epoch_published", epoch=snapshot.epoch,
                       delta_edges=delta_edges, merged_nnz=snapshot.nnz,
                       duration_seconds=duration, trace_id=trace_id)
        self._cache.invalidate_below(snapshot.epoch)
        return snapshot.epoch

    def discard_pending(self) -> int:
        """Drop the buffered delta; returns the number of edges dropped."""
        with self._write_lock:
            n = self.pending_edges
            self._delta = None
            return n

    # ------------------------------------------------------------------
    # Workload capture (repro.obs.loadgen)
    # ------------------------------------------------------------------
    def start_capture(
        self,
        recorder: Optional[WorkloadRecorder] = None,
        *,
        sample_rate: float = 1.0,
        seed: int = 0,
        capacity: int = 100_000,
    ) -> WorkloadRecorder:
        """Start recording queries into a replayable workload log.

        Every subsequent :meth:`query` (all kinds, HTTP and library
        alike) is offered to the recorder, which samples at
        ``sample_rate`` and stamps kind, params, epoch, and arrival
        offset — the schema-versioned JSONL that
        :func:`repro.obs.loadgen.replay` drives.  Pass a prepared
        ``recorder`` to share one across services; otherwise one is
        created from the keyword options.  Returns the active recorder
        (fetch its :meth:`~WorkloadRecorder.workload` any time —
        capture keeps running until :meth:`stop_capture`).
        """
        if recorder is None:
            recorder = WorkloadRecorder(sample_rate=sample_rate,
                                        seed=seed, capacity=capacity)
        self._capture = recorder
        emit_event("loadgen.capture_started",
                   sample_rate=recorder.sample_rate,
                   capacity=recorder.capacity)
        return recorder

    def stop_capture(self) -> Optional[WorkloadRecorder]:
        """Stop recording; returns the recorder (or ``None`` if capture
        was never started), whose workload stays readable."""
        recorder, self._capture = self._capture, None
        if recorder is not None:
            emit_event("loadgen.capture_stopped",
                       **recorder.stats())
        return recorder

    @property
    def capturing(self) -> bool:
        """Whether a workload recorder is currently installed."""
        return self._capture is not None

    # ------------------------------------------------------------------
    # Read path: the versioned query API
    # ------------------------------------------------------------------
    def query(self, kind: str, **params: Any) -> Dict[str, Any]:
        """Answer one query against the current snapshot.

        Returns ``{"epoch": int, "kind": str, "cached": bool,
        "result": ...}`` — the epoch stamps which snapshot answered, so
        clients can reason about read versions.  ``stats`` bypasses the
        cache (it reports on the cache).  Unknown kinds and malformed
        parameters raise :class:`ServeError`; unknown vertices raise
        :class:`UnknownVertexError`.
        """
        self._queries_total.inc()
        self.metrics.counter("serve_requests_total",
                             "Queries answered, by kind",
                             kind=kind).inc()
        snapshot = self._snapshot  # one atomic read per query
        capture = self._capture
        if capture is not None:
            capture.record(kind, params, snapshot.epoch)
        # Span outermost: the timer's observe() must fire while the
        # span is still current, or the histogram gets no exemplar.
        # The latency histogram uses the wide log-bucketed preset: the
        # narrow default saturates below 100 µs, misreporting p99 for
        # sub-millisecond cached hits.
        with self.tracer.span("service.query", kind=kind,
                              epoch=snapshot.epoch) as sp, \
                self.metrics.histogram("serve_request_seconds",
                                       "Query latency, by kind",
                                       buckets=LATENCY_BUCKETS_WIDE,
                                       kind=kind).time():
            if kind == "stats":
                return {"epoch": snapshot.epoch, "kind": kind,
                        "cached": False, "result": self._stats(snapshot)}
            compute, key = self._plan_query(snapshot, kind, params)

            def traced_compute():
                with span("compute", kind=kind):
                    return compute()
            result, cached = self._cache.get_or_compute(key, traced_compute)
            sp.set_attr("cached", cached)
            return {"epoch": snapshot.epoch, "kind": kind,
                    "cached": cached, "result": result}

    # Convenience wrappers (the library-facing spelling of the API).
    def neighbors(self, vertex: Any, *,
                  direction: str = "out") -> Dict[Any, Any]:
        """Stored neighbors of ``vertex`` as ``{neighbor: value}``."""
        return self.query("neighbors", vertex=vertex,
                          direction=direction)["result"]

    def degrees(self, *, direction: str = "out",
                vertex: Any = None) -> Any:
        """Pattern degrees — all vertices, or one when ``vertex``."""
        params = {"direction": direction}
        if vertex is not None:
            params["vertex"] = vertex
        return self.query("degrees", **params)["result"]

    def khop(self, vertex: Any, k: int, *,
             pair: Optional[str] = None) -> Dict[Any, Any]:
        """The ``k``-hop frontier ``x ⊕.⊗ Aᵏ`` from ``vertex``.

        ``pair`` names an alternative certified op-pair to fold under
        (default: the service's own); the seed vector is ``{vertex:
        one}``.
        """
        params: Dict[str, Any] = {"vertex": vertex, "k": k}
        if pair is not None:
            params["pair"] = pair
        return self.query("khop", **params)["result"]

    def path_lengths(self, vertex: Any) -> Dict[Any, float]:
        """Single-source shortest path lengths (``min.+`` relaxation)."""
        return self.query("path_lengths", vertex=vertex)["result"]

    def top_k(self, k: int = 10) -> Any:
        """The ``k`` heaviest adjacency entries as ``[src, dst, value]``."""
        return self.query("top_k", k=k)["result"]

    def stats(self) -> Dict[str, Any]:
        """Service counters (epoch, sizes, cache hit/miss/latency)."""
        return self.query("stats")["result"]

    # ------------------------------------------------------------------
    # Query planning / dispatch
    # ------------------------------------------------------------------
    def _plan_query(
        self, snapshot: Snapshot, kind: str, params: Dict[str, Any],
    ) -> Tuple[Callable[[], Any], Tuple]:
        """Validate ``params`` and return ``(compute, cache_key)``."""
        if kind == "neighbors":
            vertex = self._required(params, "vertex")
            direction = self._direction(params)
            self._no_extra(params, {"vertex", "direction"})
            compute = (lambda: snapshot.neighbors_out(vertex)) \
                if direction == "out" \
                else (lambda: snapshot.neighbors_in(vertex))
            return compute, (snapshot.epoch, kind, direction, vertex)
        if kind == "degrees":
            direction = self._direction(params)
            vertex = params.get("vertex")
            self._no_extra(params, {"vertex", "direction"})

            def compute():
                deg = snapshot.out_degrees() if direction == "out" \
                    else snapshot.in_degrees()
                if vertex is None:
                    return deg
                snapshot.require_vertex(vertex)
                return deg.get(vertex, 0)
            return compute, (snapshot.epoch, kind, direction, vertex)
        if kind == "khop":
            vertex = self._required(params, "vertex")
            k = self._nonneg_int(params, "k")
            if k > self.max_khop:
                raise ServeError(
                    f"k={k} exceeds this service's max_khop "
                    f"({self.max_khop})")
            pair = self._query_pair(params.get("pair"))
            self._no_extra(params, {"vertex", "k", "pair"})

            def compute():
                snapshot.require_vertex(vertex)
                # One fused expression for the whole hop chain: after
                # common-subexpression elimination every hop shares the
                # snapshot's adjacency leaf (and its compiled backend)
                # instead of re-indexing the array per Python vecmat.
                return khop_frontier(snapshot.adjacency, vertex, k, pair)
            return compute, (snapshot.epoch, kind, vertex, k, pair.name)
        if kind == "path_lengths":
            vertex = self._required(params, "vertex")
            self._no_extra(params, {"vertex"})

            def compute():
                snapshot.require_vertex(vertex)
                # Each min.+ relaxation round runs through the engine
                # on the snapshot's compiled backend instead of the
                # reference Python fold.
                return shortest_path_lengths(snapshot.adjacency, vertex,
                                             vecmat=vecmat)
            return compute, (snapshot.epoch, kind, vertex)
        if kind == "top_k":
            k = self._nonneg_int(params, "k", default=10)
            self._no_extra(params, {"k"})
            return (lambda: snapshot.top_k(k)), (snapshot.epoch, kind, k)
        raise ServeError(
            f"unknown query kind {kind!r}; known: {', '.join(QUERY_KINDS)}")

    def _stats(self, snapshot: Snapshot) -> Dict[str, Any]:
        return {
            "op_pair": self._pair.name,
            "epoch": snapshot.epoch,
            "vertices": len(snapshot.vertices),
            "nnz": snapshot.nnz,
            "pending_edges": self.pending_edges,
            "publications": int(self._publications_total.value),
            "queries": int(self._queries_total.value),
            "uptime_seconds": time.time() - self._started,
            "snapshot_age_seconds": time.time() - snapshot.published_at,
            "publication_latency": self._publish_seconds.snapshot(),
            "last_publication": self._last_publication,
            "latency": self._latency_stats(),
            "cache": self._cache.stats(),
        }

    def _latency_stats(self) -> Dict[str, Any]:
        """Per-kind request-latency histogram summaries for ``stats``."""
        out: Dict[str, Any] = {}
        for family in self.metrics.families():
            if family.name != "serve_request_seconds":
                continue
            for labels, hist in sorted(family.children.items()):
                kind = dict(labels).get("kind", "")
                out[kind] = hist.snapshot()
        return out

    # -- parameter validation helpers ----------------------------------
    @staticmethod
    def _required(params: Dict[str, Any], name: str) -> Any:
        if params.get(name) is None:
            raise ServeError(f"query parameter {name!r} is required")
        return params[name]

    @staticmethod
    def _direction(params: Dict[str, Any]) -> str:
        direction = params.get("direction", "out")
        if direction not in _DIRECTIONS:
            raise ServeError(
                f"direction must be one of {_DIRECTIONS}, "
                f"got {direction!r}")
        return direction

    @staticmethod
    def _nonneg_int(params: Dict[str, Any], name: str,
                    default: Optional[int] = None) -> int:
        value = params.get(name, default)
        if value is None:
            raise ServeError(f"query parameter {name!r} is required")
        if isinstance(value, bool) or not isinstance(value, int):
            try:
                value = int(str(value))
            except ValueError:
                raise ServeError(
                    f"query parameter {name!r} must be an integer, "
                    f"got {value!r}") from None
        if value < 0:
            raise ServeError(
                f"query parameter {name!r} must be >= 0, got {value}")
        return value

    @staticmethod
    def _no_extra(params: Dict[str, Any], allowed: set) -> None:
        extra = set(params) - allowed
        if extra:
            raise ServeError(
                f"unknown query parameter(s): {', '.join(sorted(extra))}")

    def _query_pair(self, name: Optional[str]) -> OpPair:
        """Resolve and certification-gate an alternative query pair.

        The same gate as service construction — Theorem II.1 criteria
        plus associative/commutative ``⊕`` — so a pair the service
        would refuse to fold deltas under is also refused as a query
        algebra (unless the service was created ``unsafe_ok``).
        """
        if name is None or name == self._pair.name:
            return self._pair
        try:
            pair = get_op_pair(name)
        except SemiringError as exc:
            raise ServeError(str(exc)) from None
        if self._unsafe_ok:
            return pair
        cert = self._pair_certs.get(name)
        if cert is None:
            cert = certify(pair, seed=0xD4, build_witness=False)
            self._pair_certs[name] = cert
        try:
            check_merge_safety(pair, certification=cert)
        except ShardError as exc:
            raise ServeError(
                f"refusing {name!r} as a query algebra: {exc}") from None
        return pair

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AdjacencyService({self._pair.name!r}, "
                f"epoch={self.epoch}, vertices="
                f"{len(self._snapshot.vertices)}, nnz={self._snapshot.nnz})")

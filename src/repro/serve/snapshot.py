"""Immutable epoch-stamped read views for the query service.

Snapshot isolation is the service's concurrency model: every published
epoch is one :class:`Snapshot` — an immutable, square (vertex × vertex)
adjacency array plus lazily built per-snapshot indexes.  Readers grab
the service's current snapshot reference **once** per query and answer
entirely from it; a writer publishing the next epoch swaps that single
reference, so concurrent reads are never torn across epochs and never
block on ingest.

The snapshot leans on the storage-backend work of the rest of the
library: numeric-backed adjacency arrays answer per-vertex neighbor
queries from the cached CSR/CSC views in O(degree), and the degree
queries ride the vectorised :func:`repro.graphs.algorithms.out_degrees`
/ :func:`~repro.graphs.algorithms.in_degrees`.  Exotic value sets fall
back to a lazily built adjacency-list index (built at most once per
snapshot — immutability makes the memo safe).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional

from repro.arrays.associative import AssociativeArray
from repro.graphs.algorithms import in_degrees, out_degrees

__all__ = ["ServeError", "UnknownVertexError", "Snapshot"]


class ServeError(ValueError):
    """Raised for malformed queries, sources, or service misuse."""


class UnknownVertexError(ServeError):
    """Raised when a query names a vertex the snapshot does not have.

    A distinct subclass so the HTTP front end can map "you asked about
    something that does not exist" (404) separately from "your request
    is malformed" (400).
    """


class Snapshot:
    """One published epoch: an immutable square adjacency array.

    Parameters
    ----------
    adjacency:
        The epoch's adjacency array.  Squared over the vertex union
        (row ∪ column keys) by :meth:`from_array` so every vertex is
        addressable on both sides — graph queries (k-hop, path lengths)
        require a square array.
    epoch:
        Monotone publication counter, 0 for the initial load.
    """

    __slots__ = ("adjacency", "epoch", "published_at", "_lock",
                 "_succ", "_pred", "_out_deg", "_in_deg")

    def __init__(self, adjacency: AssociativeArray, epoch: int) -> None:
        self.adjacency = adjacency
        self.epoch = epoch
        self.published_at = time.time()
        self._lock = threading.Lock()
        self._succ: Optional[Dict[Any, Dict[Any, Any]]] = None
        self._pred: Optional[Dict[Any, Dict[Any, Any]]] = None
        self._out_deg: Optional[Dict[Any, int]] = None
        self._in_deg: Optional[Dict[Any, int]] = None

    @classmethod
    def from_array(cls, array: AssociativeArray, epoch: int) -> "Snapshot":
        """Square ``array`` over its vertex union and stamp ``epoch``.

        The numeric promotion is attempted eagerly (and memoised on the
        array), so the snapshot's query fast paths — CSR neighbor
        slices, vectorised degrees — are decided once at publication
        instead of on a reader's critical path.
        """
        if array.row_keys != array.col_keys:
            vertices = array.row_keys.union(array.col_keys)
            array = array.with_keys(vertices, vertices)
        array.numeric_backend()
        return cls(array, epoch)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def vertices(self):
        """The vertex key set (rows == columns)."""
        return self.adjacency.row_keys

    @property
    def nnz(self) -> int:
        """Stored adjacency entries."""
        return self.adjacency.nnz

    def require_vertex(self, vertex: Any) -> Any:
        """``vertex`` if known, else :class:`UnknownVertexError`."""
        if vertex not in self.vertices:
            raise UnknownVertexError(
                f"unknown vertex {vertex!r} (epoch {self.epoch})")
        return vertex

    # ------------------------------------------------------------------
    # Per-vertex queries
    # ------------------------------------------------------------------
    def neighbors_out(self, vertex: Any) -> Dict[Any, Any]:
        """Stored successors of ``vertex`` as ``{neighbor: value}``."""
        self.require_vertex(vertex)
        nb = self.adjacency.numeric_backend()
        if nb is not None:
            data, indices, indptr = nb.csr()
            i = self.vertices.index(vertex)
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            keys = self.vertices.keys()
            return {keys[int(j)]: float(v)
                    for j, v in zip(indices[lo:hi], data[lo:hi])}
        return dict(self._succ_index().get(vertex, {}))

    def neighbors_in(self, vertex: Any) -> Dict[Any, Any]:
        """Stored predecessors of ``vertex`` as ``{neighbor: value}``."""
        self.require_vertex(vertex)
        nb = self.adjacency.numeric_backend()
        if nb is not None:
            data, rows, indptr, _perm = nb.csc()
            j = self.vertices.index(vertex)
            lo, hi = int(indptr[j]), int(indptr[j + 1])
            keys = self.vertices.keys()
            return {keys[int(i)]: float(v)
                    for i, v in zip(rows[lo:hi], data[lo:hi])}
        return dict(self._pred_index().get(vertex, {}))

    # ------------------------------------------------------------------
    # Whole-array queries (memoised per snapshot)
    # ------------------------------------------------------------------
    def out_degrees(self) -> Dict[Any, int]:
        """Stored-entry count per row, memoised for the epoch."""
        if self._out_deg is None:
            deg = out_degrees(self.adjacency)
            with self._lock:
                if self._out_deg is None:
                    self._out_deg = deg
        return self._out_deg

    def in_degrees(self) -> Dict[Any, int]:
        """Stored-entry count per column, memoised for the epoch."""
        if self._in_deg is None:
            deg = in_degrees(self.adjacency)
            with self._lock:
                if self._in_deg is None:
                    self._in_deg = deg
        return self._in_deg

    def top_k(self, k: int) -> List[List[Any]]:
        """The ``k`` heaviest stored entries as ``[row, col, value]``.

        Ordered by descending value, ties broken by (row, col) key
        order.  Requires mutually orderable stored values (every
        numeric op-pair qualifies; exotic carriers may not).
        """
        if k < 1:
            raise ServeError(f"top-k requires k >= 1, got {k}")
        try:
            ranked = sorted(self.adjacency.entries(),
                            key=lambda rcv: rcv[2], reverse=True)
        except TypeError:
            raise ServeError(
                "top-k requires orderable stored values") from None
        return [list(rcv) for rcv in ranked[:k]]

    # ------------------------------------------------------------------
    # Generic-path adjacency indexes (built at most once per snapshot)
    # ------------------------------------------------------------------
    def _succ_index(self) -> Dict[Any, Dict[Any, Any]]:
        if self._succ is None:
            succ: Dict[Any, Dict[Any, Any]] = {}
            for r, c, v in self.adjacency.entries():
                succ.setdefault(r, {})[c] = v
            with self._lock:
                if self._succ is None:
                    self._succ = succ
        return self._succ

    def _pred_index(self) -> Dict[Any, Dict[Any, Any]]:
        if self._pred is None:
            pred: Dict[Any, Dict[Any, Any]] = {}
            for r, c, v in self.adjacency.entries():
                pred.setdefault(c, {})[r] = v
            with self._lock:
                if self._pred is None:
                    self._pred = pred
        return self._pred

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Snapshot(epoch={self.epoch}, "
                f"vertices={len(self.vertices)}, nnz={self.nnz})")

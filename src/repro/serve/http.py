"""HTTP JSON front end on stdlib ``ThreadingHTTPServer``.

The golden path for serving without importing library internals:

* ``GET /health`` — liveness plus the current epoch;
* ``GET /healthz`` — readiness for load balancers: current epoch,
  snapshot age, uptime, pending delta edges;
* ``GET /stats`` — the service's ``stats`` query (cache counters,
  per-kind latency histograms etc.);
* ``GET /metrics`` — Prometheus text exposition of the service's
  per-instance registry *plus* the process-global library registry
  (expression-engine and shard instruments);
* ``GET /trace`` / ``GET /trace/<id>`` — recent trace index / one
  trace tree as JSON (see :mod:`repro.obs.trace`); a miss returns a
  structured 404 carrying the ring's retention bounds;
* ``GET /events?since=SEQ&kind=KIND&limit=N`` — the process-global
  structured event log (:mod:`repro.obs.events`) plus its retention
  window;
* ``GET /query/<kind>?vertex=...&direction=...&k=...&pair=...`` — the
  versioned read API (``kind`` as in
  :data:`repro.serve.service.QUERY_KINDS`);
* ``GET /profile`` — a live dump of the active sampling-profiler
  session (:mod:`repro.obs.profile`): hottest functions, per-span CPU,
  self-measured overhead ratio.  With no session active this is a
  *structured 409* naming the start verb — idle is a client state
  mismatch, not a server fault;
* ``GET /profile/flame`` — the flamegraph as self-contained HTML
  (live session if one is running, else the newest finished profile
  in the ring);
* ``POST /profile/start`` / ``POST /profile/stop`` — manage the
  process-wide session (body ``{"hz": 97, "memory": false}``);
* ``POST /edges`` — buffer streaming edge deltas (JSON body
  ``{"edges": [[key, src, dst], [key, src, dst, w_out, w_in], ...],
  "publish": false}``);
* ``POST /publish`` — fold the buffered delta into the next epoch.

``ThreadingHTTPServer`` handles each request on its own thread, which
is exactly what the snapshot-isolation design is for: every request
reads one immutable snapshot reference and never blocks on ingest.
Each query request opens a root span on the service's tracer, so the
whole handler → cache → expr-plan → kernel path of one HTTP request is
a single trace tree.

Errors come back as JSON bodies ``{"error": ..., "status": ...}`` —
400 for malformed requests, 404 for unknown routes/kinds/vertices.
"""

from __future__ import annotations

import json
import math
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.obs.events import emit_event, get_event_log
from repro.obs.metrics import (LATENCY_BUCKETS_WIDE, get_registry,
                               install_process_gauges, render_prometheus)
from repro.obs.profile import (DEFAULT_HZ, START_HINT, ProfileError,
                               active_session, get_profile_ring,
                               start_profile, stop_profile)
from repro.obs.trace import TraceNotFound
from repro.serve.service import QUERY_KINDS, AdjacencyService
from repro.serve.snapshot import ServeError, UnknownVertexError

__all__ = ["build_server", "serve_forever"]

#: Default TCP port of ``repro serve`` (spells "adj" on a phone pad).
DEFAULT_PORT = 8631

#: Largest accepted request body (1 MiB) — a backstop, not a quota.
_MAX_BODY = 1 << 20


def jsonable(value: Any) -> Any:
    """``value`` with non-finite floats replaced by strings.

    Strict JSON has no ``Infinity``/``NaN`` literals; ``min.+`` zeros
    (+∞) and friends travel as ``"inf"``/``"-inf"``/``"nan"`` instead
    so every client-side JSON parser accepts the body.
    """
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "nan"
        return "inf" if value > 0 else "-inf"
    if isinstance(value, dict):
        return {_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return value


def _key(key: Any) -> Any:
    """JSON object keys must be strings; non-string vertices stringify."""
    return key if isinstance(key, str) else str(key)


def _coerce_vertex(service: AdjacencyService, text: str) -> Any:
    """Map a query-string vertex back into the snapshot's key domain.

    TSV-sourced services have string vertices, so the text matches
    directly; services over int/float vertex keys get a best-effort
    numeric coercion (the string form is tried first, so a graph with
    the *string* key ``"7"`` is never misrouted).
    """
    vertices = service.snapshot().vertices
    if text in vertices:
        return text
    for cast in (int, float):
        try:
            value = cast(text)
        except ValueError:
            continue
        if value in vertices:
            return value
    return text  # unknown either way; the service reports 404


class _Handler(BaseHTTPRequestHandler):
    """One request; the service rides on the handler class."""

    service: AdjacencyService  # injected by build_server
    quiet: bool = True
    log_events: bool = False
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: N802
        """Per-request logging, off by default.

        ``BaseHTTPRequestHandler`` prints every request to stderr —
        untenable under generated load (an open-loop sweep at 1000
        req/s would emit 1000 stderr lines a second).  With
        ``log_events`` the line goes onto the bounded structured event
        ring instead (kind ``http.log``, a debug-level firehose you
        filter for explicitly: ``repro events --kind http.log``);
        with ``quiet=False`` it still reaches stderr for interactive
        runs.
        """
        if self.log_events:
            emit_event("http.log", client=self.address_string(),
                       message=fmt % args)
        elif not self.quiet:  # pragma: no cover - opt-in logging
            super().log_message(fmt, *args)

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(jsonable(payload)).encode("utf-8")
        self._send_bytes(status, body, "application/json")

    def _send_text(self, status: int, text: str,
                   content_type: str = "text/plain; version=0.0.4") -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message, "status": status})

    def _body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "malformed Content-Length")
            return None
        if length < 0 or length > _MAX_BODY:
            self._error(400, f"body must be 0..{_MAX_BODY} bytes")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"malformed JSON body: {exc}")
            return None
        if not isinstance(doc, dict):
            self._error(400, "JSON body must be an object")
            return None
        return doc

    def _route(self) -> Tuple[str, Dict[str, str]]:
        split = urlsplit(self.path)
        return split.path.rstrip("/") or "/", dict(parse_qsl(split.query))

    def _observe(self, path: str, method: str, started: float) -> None:
        """Per-route HTTP instruments on the service registry.

        The route label is the first path segment only (``/query/khop``
        → ``query``) — query kinds, trace ids, and vertices never leak
        into label cardinality.
        """
        route = path.lstrip("/").split("/", 1)[0] or "root"
        metrics = self.service.metrics
        metrics.counter("http_requests_total", "HTTP requests served",
                        route=route, method=method).inc()
        metrics.histogram("http_request_seconds",
                          "Wall time spent in HTTP handlers",
                          buckets=LATENCY_BUCKETS_WIDE,
                          route=route).observe(time.perf_counter() - started)

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        path, params = self._route()
        started = time.perf_counter()
        try:
            if path == "/health":
                self._send(200, {"status": "ok",
                                 "epoch": self.service.epoch})
                return
            if path == "/healthz":
                self._send(200, self._healthz())
                return
            if path == "/metrics":
                self._send_text(200, render_prometheus(
                    self.service.metrics, get_registry()))
                return
            if path == "/trace" or path.startswith("/trace/"):
                self._do_trace(path[len("/trace"):].lstrip("/"))
                return
            if path == "/events":
                self._do_events(params)
                return
            if path == "/stats":
                self._send(200, self.service.query("stats"))
                return
            if path == "/profile":
                self._do_profile(params)
                return
            if path == "/profile/flame":
                self._do_profile_flame(params)
                return
            if path.startswith("/query/"):
                self._do_query(path[len("/query/"):], params)
                return
            self._error(404, f"unknown path {path!r}")
        except UnknownVertexError as exc:
            self._error(404, str(exc))
        except ServeError as exc:
            self._error(400, str(exc))
        finally:
            self._observe(path, "GET", started)

    def _healthz(self) -> Dict[str, Any]:
        """Readiness payload: freshness, uptime, ingest backlog."""
        service = self.service
        return {
            "status": "ok",
            "epoch": service.epoch,
            "snapshot_age_seconds": service.snapshot_age_seconds,
            "uptime_seconds": service.uptime_seconds,
            "pending_edges": service.pending_edges,
        }

    def _do_trace(self, trace_id: str) -> None:
        tracer = self.service.tracer
        if not trace_id:
            self._send(200, {"traces": tracer.traces()})
            return
        try:
            root = tracer.lookup(trace_id)
        except TraceNotFound as exc:
            # Structured miss: the requested id plus the ring's bounds,
            # so a client can tell "never existed" from "evicted".
            self._send(404, {"error": str(exc), "status": 404,
                             "trace_id": exc.trace_id,
                             "retention": exc.retention})
            return
        self._send(200, root.to_dict())

    def _do_events(self, params: Dict[str, str]) -> None:
        log = get_event_log()
        filters: Dict[str, Any] = {}
        for name in ("since", "limit"):
            if name in params:
                try:
                    filters[name] = int(params[name])
                except ValueError:
                    self._error(
                        400, f"{name} must be an integer, "
                        f"got {params[name]!r}")
                    return
        if "kind" in params:
            filters["kind"] = params["kind"]
        extra = set(params) - {"since", "limit", "kind"}
        if extra:
            self._error(400, "unknown event parameter(s): "
                        + ", ".join(sorted(extra)))
            return
        self._send(200, {"events": log.events(**filters),
                         "retention": log.retention()})

    def _do_profile(self, params: Dict[str, str]) -> None:
        session = active_session()
        if session is None:
            # 409, not 500: no-session is a client/state mismatch, and
            # the body names the verb that fixes it plus what the ring
            # still holds.
            self._send(409, {"error": START_HINT, "status": 409,
                             "profiles": get_profile_ring().profiles(),
                             "retention": get_profile_ring().retention()})
            return
        top = 20
        if "top" in params:
            try:
                top = max(1, int(params["top"]))
            except ValueError:
                self._error(400, f"top must be an integer, "
                            f"got {params['top']!r}")
                return
        self._send(200, session.dump(top=top,
                                     stacks=params.get("stacks") == "1"))

    def _do_profile_flame(self, params: Dict[str, str]) -> None:
        session = active_session()
        if session is not None:
            profile = session.snapshot_profile()
        else:
            ring = get_profile_ring()
            profile = ring.get(params["id"]) if "id" in params \
                else ring.latest()
            if profile is None:
                self._send(409, {"error": START_HINT, "status": 409,
                                 "retention": ring.retention()})
                return
        self._send_text(200, profile.flamegraph_html(),
                        "text/html; charset=utf-8")

    def _do_query(self, kind: str, params: Dict[str, str]) -> None:
        kind = kind.replace("-", "_")
        if kind not in QUERY_KINDS:
            self._error(
                404, f"unknown query kind {kind!r}; "
                f"known: {', '.join(QUERY_KINDS)}")
            return
        query: Dict[str, Any] = dict(params)
        if "vertex" in query:
            query["vertex"] = _coerce_vertex(self.service,
                                             query["vertex"])
        self._send(200, self.service.query(kind, **query))

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        path, _params = self._route()
        started = time.perf_counter()
        doc = self._body()
        if doc is None:
            return
        try:
            if path == "/edges":
                self._do_edges(doc)
                return
            if path == "/publish":
                self._send(200, {"epoch": self.service.publish()})
                return
            if path == "/profile/start":
                self._do_profile_start(doc)
                return
            if path == "/profile/stop":
                self._do_profile_stop()
                return
            self._error(404, f"unknown path {path!r}")
        except (ServeError, ValueError) as exc:
            # GraphError (duplicate keys, zero values) is a ValueError.
            self._error(400, str(exc))
        finally:
            self._observe(path, "POST", started)

    def _do_profile_start(self, doc: Dict[str, Any]) -> None:
        try:
            hz = float(doc.get("hz", DEFAULT_HZ))
        except (TypeError, ValueError):
            self._error(400, f"hz must be a number, got {doc.get('hz')!r}")
            return
        try:
            session = start_profile(hz=hz, memory=bool(doc.get("memory")))
        except ProfileError as exc:
            self._send(409, {"error": str(exc), "status": 409})
            return
        self._send(200, {"profile_id": session.profile_id,
                         "hz": session.hz, "memory": session.memory})

    def _do_profile_stop(self) -> None:
        try:
            profile = stop_profile()
        except ProfileError as exc:   # includes NoActiveProfile
            self._send(409, {"error": str(exc), "status": 409})
            return
        self._send(200, profile.to_dict())

    def _do_edges(self, doc: Dict[str, Any]) -> None:
        edges = doc.get("edges")
        if not isinstance(edges, list):
            self._error(400, 'body must carry an "edges" list')
            return
        for edge in edges:
            if not isinstance(edge, list) or len(edge) not in (3, 5):
                self._error(
                    400, "each edge must be [key, src, dst] or "
                    "[key, src, dst, w_out, w_in]")
                return
        buffered = self.service.add_edges(tuple(e) for e in edges)
        payload: Dict[str, Any] = {
            "buffered": buffered,
            "pending": self.service.pending_edges,
            "epoch": self.service.epoch,
        }
        if doc.get("publish"):
            payload["epoch"] = self.service.publish()
            payload["pending"] = self.service.pending_edges
        self._send(200, payload)


def build_server(
    service: AdjacencyService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    quiet: bool = True,
    log_events: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run ``ThreadingHTTPServer`` bound to ``host:port``.

    ``port=0`` binds an ephemeral port (``server.server_address[1]``
    reports it) — the test-friendly spelling.  ``log_events`` routes
    the per-request access log onto the structured event ring (kind
    ``http.log``) instead of stderr; off by default.  The caller owns
    the server lifecycle (``serve_forever()`` / ``shutdown()``).
    """
    # Serving is when process health matters: RSS, GC, threads, and FD
    # gauges join the global registry so GET /metrics reports them.
    install_process_gauges()
    handler = type("AdjacencyHandler", (_Handler,),
                   {"service": service, "quiet": quiet,
                    "log_events": log_events})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_forever(
    service: AdjacencyService,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    quiet: bool = True,
    log_events: bool = False,
) -> None:
    """Blocking convenience wrapper used by ``repro serve``."""
    with build_server(service, host, port, quiet=quiet,
                      log_events=log_events) as server:
        server.serve_forever()

"""LRU query cache keyed on ``(epoch, query)``, metered via ``repro.obs``.

Correctness under concurrent publication comes from the key shape, not
from eviction timing: the epoch is the first component of every cache
key, so an entry computed against epoch ``e`` can only ever be returned
to a query that is itself reading epoch ``e`` — the cache is structurally
incapable of serving a stale epoch.  Publication-time invalidation
(:meth:`QueryCache.invalidate_below`) merely reclaims memory held by
entries no reader can ask for again.

Counters live on a :class:`~repro.obs.metrics.MetricsRegistry`
(``serve_cache_*`` instruments) rather than ad-hoc integers, so the
same numbers surface identically in the service's ``/stats`` JSON and
the Prometheus ``/metrics`` exposition; the pre-observability integer
attributes (``hits``, ``misses``, ``evictions``, ``invalidations``)
remain available as read-only properties.  Cold (miss) compute time
feeds a latency histogram, so ``/stats`` reports p50/p99 of cache-fill
work, not just totals.

Values are cached by reference and must be treated as immutable by
callers (the service returns them verbatim to many readers).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.obs.events import emit_event
from repro.obs.metrics import MetricsRegistry

__all__ = ["QueryCache"]


class QueryCache:
    """A thread-safe LRU keyed by ``(epoch, ...)`` tuples.

    Parameters
    ----------
    maxsize:
        Entry capacity; least-recently-used entries are evicted beyond
        it.  ``0`` disables caching (every lookup misses, nothing is
        stored) — the escape hatch for measuring cold latency.
    registry:
        The metrics registry the cache's instruments live on.  Default:
        a private registry, so independent caches never pool their
        counts; the service passes its own per-instance registry so
        cache metrics surface through ``/metrics`` and ``/stats``.
    """

    def __init__(self, maxsize: int = 1024, *,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._hits = self.registry.counter(
            "serve_cache_hits_total", "Query-cache lookup hits")
        self._misses = self.registry.counter(
            "serve_cache_misses_total", "Query-cache lookup misses")
        self._evictions = self.registry.counter(
            "serve_cache_evictions_total", "LRU evictions")
        self._invalidations = self.registry.counter(
            "serve_cache_invalidations_total",
            "Entries reclaimed at epoch publication")
        self._cold = self.registry.histogram(
            "serve_cache_cold_seconds",
            "Compute time of cache misses (cache-fill work)")
        self.registry.gauge("serve_cache_size", "Live cache entries",
                            fn=self.__len__)

    # ------------------------------------------------------------------
    # Backward-compatible counter attributes (pre-obs API)
    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookup hits (reads the ``serve_cache_hits_total`` counter)."""
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        """Lookup misses (reads ``serve_cache_misses_total``)."""
        return int(self._misses.value)

    @property
    def evictions(self) -> int:
        """LRU evictions (reads ``serve_cache_evictions_total``)."""
        return int(self._evictions.value)

    @property
    def invalidations(self) -> int:
        """Publication-time reclaims (``serve_cache_invalidations_total``)."""
        return int(self._invalidations.value)

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)``; counts the hit or miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                value = self._entries[key]
                hit = True
            else:
                value, hit = None, False
        (self._hits if hit else self._misses).inc()
        return hit, value

    def store(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting LRU entries."""
        if self.maxsize == 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
        if evicted:
            self._evictions.inc(evicted)

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Tuple[Any, bool]:
        """``(value, was_cached)`` — compute-and-fill on miss.

        ``compute`` runs outside the lock, so two readers racing on the
        same cold key may both compute it; both results are equal (the
        computation is a pure function of the immutable snapshot), the
        second store simply wins.  Cold compute time feeds the
        ``serve_cache_cold_seconds`` histogram surfaced by :meth:`stats`.
        """
        hit, value = self.lookup(key)
        if hit:
            return value, True
        with self._cold.time():
            value = compute()
        self.store(key, value)
        return value, False

    # ------------------------------------------------------------------
    # Publication-time maintenance
    # ------------------------------------------------------------------
    def invalidate_below(self, epoch: int) -> int:
        """Drop entries whose key epoch precedes ``epoch``.

        Called by the service right after publishing ``epoch``; returns
        the number of entries reclaimed.
        """
        with self._lock:
            stale = [k for k in self._entries
                     if isinstance(k, tuple) and k and k[0] < epoch]
            for k in stale:
                del self._entries[k]
        if stale:
            self._invalidations.inc(len(stale))
            emit_event("cache_invalidation", epoch=epoch,
                       reclaimed=len(stale))
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Counters for the service's ``stats`` query.

        The historical flat shape, now read from the instruments, plus
        a ``cold_latency`` histogram summary (count/mean/p50/p90/p99).
        """
        hits, misses = self.hits, self.misses
        lookups = hits + misses
        cold = self._cold.snapshot()
        return {
            "size": len(self),
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": (hits / lookups) if lookups else 0.0,
            "cold_seconds_total": cold["sum"],
            "cold_seconds_avg": cold["mean"],
            "cold_latency": cold,
        }

"""LRU query cache keyed on ``(epoch, query)`` with hit/miss counters.

Correctness under concurrent publication comes from the key shape, not
from eviction timing: the epoch is the first component of every cache
key, so an entry computed against epoch ``e`` can only ever be returned
to a query that is itself reading epoch ``e`` — the cache is structurally
incapable of serving a stale epoch.  Publication-time invalidation
(:meth:`QueryCache.invalidate_below`) merely reclaims memory held by
entries no reader can ask for again.

Values are cached by reference and must be treated as immutable by
callers (the service returns them verbatim to many readers).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

__all__ = ["QueryCache"]


class QueryCache:
    """A thread-safe LRU keyed by ``(epoch, ...)`` tuples.

    Parameters
    ----------
    maxsize:
        Entry capacity; least-recently-used entries are evicted beyond
        it.  ``0`` disables caching (every lookup misses, nothing is
        stored) — the escape hatch for measuring cold latency.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._cold_seconds = 0.0

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    def lookup(self, key: Hashable) -> Tuple[bool, Any]:
        """``(hit, value)``; counts the hit or miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, self._entries[key]
            self.misses += 1
            return False, None

    def store(self, key: Hashable, value: Any) -> None:
        """Insert ``value`` under ``key``, evicting LRU entries."""
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Any]) -> Tuple[Any, bool]:
        """``(value, was_cached)`` — compute-and-fill on miss.

        ``compute`` runs outside the lock, so two readers racing on the
        same cold key may both compute it; both results are equal (the
        computation is a pure function of the immutable snapshot), the
        second store simply wins.  Cold compute time feeds the latency
        counters surfaced by :meth:`stats`.
        """
        hit, value = self.lookup(key)
        if hit:
            return value, True
        t0 = time.perf_counter()
        value = compute()
        elapsed = time.perf_counter() - t0
        with self._lock:
            self._cold_seconds += elapsed
        self.store(key, value)
        return value, False

    # ------------------------------------------------------------------
    # Publication-time maintenance
    # ------------------------------------------------------------------
    def invalidate_below(self, epoch: int) -> int:
        """Drop entries whose key epoch precedes ``epoch``.

        Called by the service right after publishing ``epoch``; returns
        the number of entries reclaimed.
        """
        with self._lock:
            stale = [k for k in self._entries
                     if isinstance(k, tuple) and k and k[0] < epoch]
            for k in stale:
                del self._entries[k]
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """Counters for the service's ``stats`` query."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
                "cold_seconds_total": self._cold_seconds,
                "cold_seconds_avg": (self._cold_seconds / self.misses
                                     if self.misses else 0.0),
            }

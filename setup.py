"""Packaging metadata (kept in setup.py — the offline environment has no
``wheel`` package, so modern PEP 517 editable installs fail with
``invalid command 'bdist_wheel'``; ``pip install -e . --no-use-pep517
--no-build-isolation`` routes through ``setup.py develop`` instead)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro-adjacency-arrays",
    version=VERSION,
    description="Constructing adjacency arrays from incidence arrays "
                "(Jananthan, Dibert & Kepner, 2017) — reproduction and "
                "out-of-core construction engine",
    python_requires=">=3.9",
    install_requires=["numpy"],
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)

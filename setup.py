"""Legacy setup shim.

The environment has no ``wheel`` package (offline), so modern PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``.  This shim
enables ``pip install -e . --no-use-pep517 --no-build-isolation``, which
routes through ``setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Observability: metrics, span traces, and the benchmark harness.

Every subsystem is instrumented through one dependency-free layer,
:mod:`repro.obs` — counters/gauges/histograms on thread-safe
registries, and ``contextvars``-propagated span traces that nest
automatically through however many layers a request crosses.  This
example walks the surface without starting an HTTP server:

1. drive an :class:`~repro.serve.AdjacencyService` and read its
   per-instance registry — the exact families ``GET /metrics`` renders
   (cache hit ratio, per-kind latency percentiles, snapshot age);
2. inspect the trace tree the service recorded for one k-hop query:
   planner, executor nodes, and the kernels they dispatched to
   (``repro trace`` prints the same tree from the command line);
3. instrument *your own* pipeline: open a root span on a
   :class:`~repro.obs.Tracer` and every instrumented library call —
   expression planning, kernel execution — attaches itself beneath it;
4. read the measured per-kernel rates that the library instruments
   feed back into the expression engine's cost model;
5. fabricate two benchmark-harness runs and diff them with the same
   regression gate CI applies (``repro bench --compare``);
6. find the OpenMetrics exemplars that link slow histogram buckets
   back to trace ids on the exposition ``GET /metrics`` renders;
7. read the structured event log — the same ring ``GET /events`` and
   ``repro events --follow`` expose — and see the publication events
   the service emitted above, stamped with their trace ids.

Run:  python examples/observability.py
"""

from __future__ import annotations

import repro
from repro.expr import evaluate, lazy
from repro.graphs.generators import rmat_multigraph
from repro.obs import Tracer, get_registry, render_prometheus, render_trace
from repro.obs.bench import compare
from repro.serve import AdjacencyService


def main() -> None:
    pair = repro.get_op_pair("plus_times")

    # ------------------------------------------------------------------
    # 1. Service metrics: every query and publication is measured.
    # ------------------------------------------------------------------
    graph = rmat_multigraph(7, 600, seed=42)
    service = AdjacencyService(pair)
    service.add_edges((k, s, t, 1.0, 1.0) for k, s, t in graph.edges())
    service.publish()

    snap = service.snapshot()
    source = next(iter(snap.adjacency.rows_nonempty()))
    for _ in range(3):                       # one miss, then cache hits
        service.query("khop", vertex=source, k=3)

    print("— service registry (what GET /metrics renders) —")
    exposition = render_prometheus(service.metrics, get_registry())
    wanted = ("serve_queries_total", "serve_cache_hits", "serve_epoch")
    for line in exposition.splitlines():
        if line.startswith(wanted):
            print(f"  {line}")

    stats = service.stats()
    print(f"\ncache hit ratio: {stats['cache']['hits']}/"
          f"{stats['cache']['hits'] + stats['cache']['misses']}, "
          f"cold-path p50 "
          f"{stats['cache']['cold_latency']['p50'] * 1e3:.3f} ms\n")

    # ------------------------------------------------------------------
    # 2. The trace the service recorded for that query.
    # ------------------------------------------------------------------
    print("— span tree of the cold k-hop query (GET /trace/<id>) —")
    queries = [t for t in service.tracer.traces()     # newest first,
               if t["name"] == "service.query"]       # so the cold
    cold_root = queries[-1]["trace_id"]               # query is last
    print(render_trace(service.tracer.get(cold_root)))

    # ------------------------------------------------------------------
    # 3. Tracing your own pipeline: library spans nest automatically.
    # ------------------------------------------------------------------
    weights = {k: float(1 + (i % 9))
               for i, k in enumerate(graph.edge_keys)}
    eout, ein = repro.incidence_arrays(graph, zero=pair.zero,
                                      out_values=weights,
                                      in_values=weights)
    tracer = Tracer()
    with tracer.span("my_pipeline", edges=graph.num_edges):
        adjacency = evaluate(
            lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair))
    print("\n— the same propagation through your own root span —")
    print(render_trace(tracer.latest()))
    assert adjacency.nnz > 0

    # ------------------------------------------------------------------
    # 4. Measured kernel rates feeding the cost model.
    # ------------------------------------------------------------------
    from repro.expr.cost import measured_seconds_per_term
    print("\n— measured kernel rates (cost-model calibration) —")
    for family in get_registry().families():
        if family.name != "expr_kernel_terms_total":
            continue
        for labels, _inst in sorted(family.children.items()):
            kernel = dict(labels).get("kernel", "?")
            rate = measured_seconds_per_term(kernel)
            if rate is not None:
                print(f"  {kernel}: {rate * 1e9:.2f} ns/term")

    # ------------------------------------------------------------------
    # 5. The regression gate, on two fabricated harness runs.
    # ------------------------------------------------------------------
    def run_doc(run_id, cold_ms):
        return {"run_id": run_id, "headline": {"serve": {
            "khop_cold_ms": {"value": cold_ms, "direction": "lower",
                             "unit": "ms"}}}}

    result = compare(run_doc("baseline", 10.0),
                     run_doc("candidate", 15.0), threshold=0.20)
    print("\n— repro bench --compare, the CI gate —")
    print(result.describe())
    assert not result.ok                      # +50% > 20%: gated

    # ------------------------------------------------------------------
    # 6. Exemplars: histogram buckets link back to trace ids.
    # ------------------------------------------------------------------
    print("\n— exemplar-bearing bucket lines on /metrics —")
    exposition = render_prometheus(service.metrics, get_registry())
    shown = 0
    for line in exposition.splitlines():
        if " # {" in line and shown < 3:
            print(f"  {line}")
            shown += 1
    # The same links, harvested as a dict (what bench runs embed).
    from repro.obs import harvest_exemplars
    for key, ex in sorted(harvest_exemplars(service.metrics).items()):
        print(f"  {key}: trace {ex['trace_id']} "
              f"value {ex['value'] * 1e3:.3f} ms")

    # ------------------------------------------------------------------
    # 7. The event log: lifecycle moments, stamped with trace ids.
    # ------------------------------------------------------------------
    from repro.obs import get_event_log
    log = get_event_log()
    print("\n— structured event log (GET /events) —")
    for event in log.events(limit=5):
        trace = event.get("trace_id", "-")
        print(f"  #{event['seq']} {event['kind']} trace={trace}")
    retention = log.retention()
    print(f"  retention: {retention['stored']}/{retention['capacity']} "
          f"stored, {retention['dropped']} dropped")
    published = log.events(kind="epoch_published")
    assert published, "the publish() above should have logged an event"
    # The event's trace id resolves to the publication's span tree.
    tree = service.tracer.get(published[-1]["trace_id"])
    assert tree is not None and tree.name == "service.publish"

    print("\nobservability demo complete")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's full evaluation: Figures 1–5 on the music metadata.

Reproduces, in order:

* Figure 1 — the exploded sparse view ``E`` of the music table;
* Figure 2 — sub-array selection ``E1``/``E2`` with D4M range syntax;
* Figure 3 — ``E1ᵀ ⊕.⊗ E2`` under all seven op-pairs (unit values);
* Figure 4 — re-weighting ``E1`` (Electronic 1, Pop 2, Rock 3);
* Figure 5 — the seven products with the weighted ``E1``;

then verifies every table against the hard-coded paper values.

Run:  python examples/music_graph.py
"""

from __future__ import annotations

from repro import format_array, format_stacked, get_op_pair
from repro.core.pipeline import GraphConstructionPipeline
from repro.datasets.music import music_table
from repro.experiments.expected import FIG35_STACKS
from repro.experiments.figures import (
    Figure1Experiment,
    Figure2Experiment,
    Figure3Experiment,
    Figure4Experiment,
    Figure5Experiment,
)
from repro.values.semiring import PAPER_FIGURE_PAIRS


def main() -> None:
    pipe = GraphConstructionPipeline(music_table())

    # ---- Figure 1 -------------------------------------------------------
    e = pipe.incidence
    print(f"Figure 1: E is {e.shape[0]} × {e.shape[1]} with {e.nnz} "
          "stored 1s")
    print(format_array(e, max_col_width=13))

    # ---- Figure 2 -------------------------------------------------------
    e1 = pipe.select("Genre|A : Genre|Z")
    e2 = pipe.select("Writer|A : Writer|Z")
    print("\nFigure 2: E1 = E(:, 'Genre|A : Genre|Z')")
    print(format_array(e1, max_col_width=18))
    print("\nFigure 2: E2 = E(:, 'Writer|A : Writer|Z') "
          "(writerless track hidden, as in the paper)")
    print(format_array(e2, hide_empty_rows=True, max_col_width=22))

    # ---- Figure 3 -------------------------------------------------------
    def stacked(products, title):
        blocks = []
        for stack in FIG35_STACKS:
            label = " = ".join(get_op_pair(n).display for n in stack)
            blocks.append((f"E1ᵀ {label} E2", products[stack[0]]))
        return format_stacked(blocks, title=title)

    fig3 = {name: pipe.correlate("Genre|*", "Writer|*", name)
            for name in PAPER_FIGURE_PAIRS}
    print("\n" + stacked(fig3, "Figure 3: seven op-pairs, unit values"))

    # ---- Figures 4 and 5 -------------------------------------------------
    from repro.datasets.music import music_e1_weighted, music_e2
    from repro.core.construction import correlate

    e1w = music_e1_weighted()
    print("\nFigure 4: weighted E1")
    print(format_array(e1w, max_col_width=18))

    fig5 = {}
    for name in PAPER_FIGURE_PAIRS:
        pair = get_op_pair(name)
        a = e1w if pair.is_zero(0) else e1w.with_zero(pair.zero)
        b = music_e2() if pair.is_zero(0) \
            else music_e2().with_zero(pair.zero)
        fig5[name] = correlate(a, b, pair)
    print("\n" + stacked(fig5, "Figure 5: seven op-pairs, weighted E1"))

    # ---- verification ----------------------------------------------------
    print("\nVerifying against the paper's tables...")
    for exp in (Figure1Experiment(), Figure2Experiment(),
                Figure3Experiment(), Figure4Experiment(),
                Figure5Experiment()):
        v = exp.verify()
        status = "MATCH" if v.matched else "MISMATCH"
        print(f"  {exp.name}: {status} "
              f"({sum(1 for _n, ok, _d in v.checks if ok)}/"
              f"{len(v.checks)} checks)")
        assert v.matched, v.describe()
    print("All five figures reproduce exactly.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Profiling: sampled CPU, flamegraphs, heap deltas, profile diffs.

The sampling profiler (:mod:`repro.obs.profile`) is the attribution
layer of the observability stack: metrics say *how much*, traces say
*where the wall time went*, the profiler says *which code burned the
CPU* — with no dependencies beyond the standard library and no code
changes in the profiled workload.  This example walks the surface
in-process (``repro profile start|stop|dump|diff`` and
``GET /profile[/flame]`` expose the same machinery over a server):

1. sample a k-hop query workload and read the collapsed stacks —
   the dominant frames are the semiring kernels, exactly where the
   paper's adjacency-construction work says the time should go;
2. per-span CPU attribution: the same samples, folded into the trace
   tree, so a span's wall time and its sampled CPU sit side by side
   (a wide gap means blocking, not compute);
3. render a self-contained HTML flamegraph plus its terminal twin;
4. account heap growth around a labelled block with ``tracemalloc``
   (``memory=True`` sessions bracket epoch publications the same way);
5. diff two profiles by self-time *share* — the function-level
   regression report ``repro bench --compare`` prints for profiled
   runs.

Run:  python examples/profiling.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro
from repro.graphs.generators import rmat_multigraph
from repro.obs import Tracer, render_trace
from repro.obs.profile import (
    diff_function_tables,
    heap_delta,
    render_flamegraph_text,
    render_profile_diff,
    start_profile,
    stop_profile,
)
from repro.serve import AdjacencyService


def build_service(pair, scale=8, edges=1500, seed=7):
    graph = rmat_multigraph(scale, edges, seed=seed)
    service = AdjacencyService(pair, cache_size=0)   # kernels, not LRU
    service.add_edges((k, s, t, 1.0, 1.0) for k, s, t in graph.edges())
    service.publish()
    return service


def drive(service, seconds, k=4):
    vertices = list(service.snapshot().vertices)
    deadline = time.perf_counter() + seconds
    n = 0
    while time.perf_counter() < deadline:
        service.khop(vertices[n % len(vertices)], k)
        n += 1
    return n


def main() -> None:
    pair = repro.get_op_pair("plus_times")
    service = build_service(pair)

    # ------------------------------------------------------------------
    # 1. Sample a k-hop workload; the kernels dominate the profile.
    # ------------------------------------------------------------------
    start_profile(hz=200)
    queries = drive(service, 1.2)
    profile = stop_profile()

    print(f"— sampled {queries} uncached khop queries —")
    print(f"profile {profile.profile_id}: {profile.samples} samples "
          f"@ {profile.hz:g} Hz over {profile.duration:.2f}s, "
          f"overhead {profile.overhead_ratio:.2%} (self-measured)")
    print("hottest functions (self%):")
    for row in profile.top_functions(5):
        print(f"  {row['self_pct']:6.2f}%  {row['function']}")
    assert profile.samples > 0

    # ------------------------------------------------------------------
    # 2. Per-span CPU: samples folded into the trace tree.
    # ------------------------------------------------------------------
    tracer = Tracer()
    start_profile(hz=200)
    with tracer.span("profiled_pipeline"):
        drive(service, 0.6, k=5)
    stop_profile()
    print("\n— the span tree, now carrying cpu_ms/cpu_samples attrs —")
    print(render_trace(tracer.latest()))

    # ------------------------------------------------------------------
    # 3. Flamegraphs: terminal text and self-contained HTML.
    # ------------------------------------------------------------------
    print("\n— terminal flamegraph (top of the sample tree) —")
    text = render_flamegraph_text(profile.stacks, max_depth=6,
                                  min_pct=5.0)
    print("\n".join(text.splitlines()[:12]))
    with tempfile.TemporaryDirectory() as tmp:
        flame = Path(tmp) / "profile_flame.html"
        flame.write_text(profile.flamegraph_html(), encoding="utf-8")
        print(f"\nwrote {flame.name}: {flame.stat().st_size} bytes, "
              "zero external assets")

    # ------------------------------------------------------------------
    # 4. Heap accounting around a labelled block (memory=True).
    # ------------------------------------------------------------------
    start_profile(hz=20, memory=True)
    with heap_delta("publish_batch"):
        service.add_edges((f"g{i}", f"n{i}", f"n{i + 1}", 1.0, 1.0)
                          for i in range(4000))
        service.publish()
    mem_profile = stop_profile()
    delta = next(d for d in mem_profile.memory["deltas"]
                 if d["label"] == "publish_batch")
    print("\n— heap growth across the labelled publication —")
    print(f"  publish_batch grew {delta['grew_bytes'] / 1024:.0f} KiB; "
          f"top growth site: {delta['top'][0]['site'] if delta['top'] else 'n/a'}")

    # ------------------------------------------------------------------
    # 5. Profile diffs by self-time share (the bench --compare report).
    # ------------------------------------------------------------------
    baseline = profile.function_totals()
    candidate = {name: dict(counts) for name, counts
                 in baseline.items()}
    hottest = profile.top_functions(1)[0]["function"]
    candidate[hottest] = {                      # fabricate a regression
        "self": baseline[hottest]["self"] * 4,
        "total": baseline[hottest]["total"] * 4}
    rows = diff_function_tables(baseline, candidate, top=5)
    print("\n— function-level diff of the fabricated regression —")
    print(render_profile_diff(rows))
    assert rows and rows[0]["function"] == hottest

    print("\nprofiling demo complete")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Load testing and SLOs: capture → replay → sweep → gated baseline.

``bench_serve`` measures one query at a time (closed-loop).  This
example asks the production question instead: *what arrival rate can
the adjacency service sustain before its tail latency breaks an
SLO?* — using :mod:`repro.obs.loadgen`:

1. **capture** a sampled, schema-versioned query log off a live
   service (``service.start_capture()``), save it as replayable
   JSONL, and round-trip it through :class:`~repro.obs.Workload`;
2. **synthesize** the same shape from a query-mix spec when there is
   no live traffic to record — deterministic under a seed;
3. **replay** the workload open-loop under a Poisson arrival schedule
   and read coordinated-omission-corrected percentiles next to the
   naive service-time ones — including a staged server stall that the
   naive numbers forgive and the corrected numbers expose;
4. **sweep** the offered rate until a declared
   :class:`~repro.obs.SLO` breaks, read ``sustainable_qps``, and see
   the ``loadgen.*`` events the sweep leaves on the structured ring;
5. show how the same scenario rides ``repro bench`` as
   ``bench_loadgen``, whose ``sustainable_qps`` / corrected-p99
   headlines CI gates against ``BENCH_baseline.json``.

Run:  python examples/loadgen_sweep.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import repro
from repro.graphs.generators import rmat_multigraph
from repro.obs import SLO, ServiceTarget, Workload, get_event_log
from repro.obs.loadgen import render_replay, render_sweep, replay, sweep, \
    synthesize
from repro.serve import AdjacencyService


def build_service() -> AdjacencyService:
    pair = repro.get_op_pair("plus_times")
    graph = rmat_multigraph(7, 800, seed=42)
    service = AdjacencyService(pair)
    service.add_edges((k, s, t, 1.0, 1.0) for k, s, t in graph.edges())
    service.publish()
    return service


def main() -> None:
    service = build_service()
    vertices = list(service.snapshot().vertices)
    print(f"service ready: {len(vertices)} vertices, epoch "
          f"{service.epoch}")

    # ------------------------------------------------------------------
    # 1. Capture: a sampled query log off the live service.
    # ------------------------------------------------------------------
    print("\n=== 1. capture a query log off the live service ===")
    service.start_capture(sample_rate=1.0)
    for v in vertices[:30]:
        service.query("neighbors", vertex=v)
    service.query("khop", vertex=vertices[0], k=2)
    service.query("stats")
    recorder = service.stop_capture()
    captured = recorder.workload()
    print(f"captured {len(captured)} ops "
          f"(stats: {recorder.stats()})")
    print(f"mix: {captured.kinds()}")

    with tempfile.TemporaryDirectory() as tmp:
        path = captured.save(Path(tmp) / "captured.jsonl")
        reloaded = Workload.load(path)
        header = path.read_text().splitlines()[0]
        print(f"saved + reloaded {len(reloaded)} ops; header: {header}")

    # ------------------------------------------------------------------
    # 2. Synthesize: the same shape without live traffic.
    # ------------------------------------------------------------------
    print("\n=== 2. synthesize a workload from a query-mix spec ===")
    workload = synthesize(vertices, mix="neighbors=0.7,khop=0.2,"
                          "degrees=0.1", n_ops=400, seed=13, max_k=2)
    print(f"synthesized {len(workload)} ops, mix {workload.kinds()}")
    again = synthesize(vertices, mix="neighbors=0.7,khop=0.2,"
                       "degrees=0.1", n_ops=400, seed=13, max_k=2)
    assert again.ops == workload.ops
    print("same seed → byte-identical workload (replays are "
          "reproducible)")

    # ------------------------------------------------------------------
    # 3. Open-loop replay with coordinated-omission correction.
    # ------------------------------------------------------------------
    print("\n=== 3. open-loop replay (Poisson arrivals) ===")
    target = ServiceTarget(service)
    report = replay(workload, target, rate=300.0, process="poisson",
                    threads=2, seed=7, warmup=50, emit=False)
    print(render_replay(report))

    print("\n--- why 'corrected' matters: a 200ms server stall ---")
    stall = {"armed": True}

    def stalling_target(kind, params):
        if stall["armed"]:
            stall["armed"] = False
            time.sleep(0.2)
        return service.query(kind, **params)

    stalling_target.name = "service:with-stall"   # type: ignore[attr-defined]
    stalled = replay(workload, stalling_target, rate=300.0,
                     process="fixed", threads=1, duration=1.0,
                     emit=False)
    corrected = stalled["corrected"]["p99_ms"]
    naive = stalled["service_time"]["p99_ms"]
    print(f"corrected p99 {corrected:.1f} ms vs naive service-time "
          f"p99 {naive:.1f} ms")
    assert corrected > naive, (corrected, naive)
    print("the naive number forgives the queue the stall built; the "
          "corrected one charges it")

    # ------------------------------------------------------------------
    # 4. Saturation sweep against a declared SLO.
    # ------------------------------------------------------------------
    print("\n=== 4. SLO-gated saturation sweep ===")
    log = get_event_log()
    before = log.retention()["last_seq"] or 0
    doc = sweep(workload, target, rates=[200.0, 400.0, 800.0],
                duration=0.5, slo=SLO(p99_ms=100.0), threads=2,
                seed=7, warmup=50)
    print(render_sweep(doc))
    kinds = sorted({e["kind"] for e in log.events(since=before,
                                                  kind="loadgen.*")})
    print(f"events on the ring: {kinds}")
    print("(watch live with: repro events --kind 'loadgen.*' "
          "--follow)")

    # ------------------------------------------------------------------
    # 5. The same scenario under the gated benchmark harness.
    # ------------------------------------------------------------------
    print("\n=== 5. the gate ===")
    print("bench_loadgen runs this sweep under `repro bench --quick` "
          "and nominates headlines:")
    print(f"  sustainable_qps = {doc['sustainable_qps']:g} "
          "(higher is better)")
    p99 = doc["steps"][-1]["replay"]["corrected"]["p99_ms"]
    print(f"  corrected_p99_ms = {p99:g} (lower is better)")
    print("CI compares both against BENCH_baseline.json "
          "(>20% in the worse direction fails the build).")

    print("\nloadgen sweep demo complete")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Semiring gallery: certifying the whole op-pair catalog.

Walks the Section III landscape:

* the paper's examples (ℕ/ℝ≥0 ``+.×``, ordered-set ``max.min``, strings,
  booleans) — all certified SAFE;
* the non-examples (completed max-plus, power-set ``∪.∩``, rings) — each
  UNSAFE with a *different* violated criterion, and each accompanied by
  its Lemma II.2/II.3/II.4 witness graph, printed with the incidence
  arrays and the failing product;
* the "semiring-like structures" remark: a pair with non-associative,
  non-commutative operations that still certifies SAFE.

Run:  python examples/semiring_gallery.py
"""

from __future__ import annotations

import repro
from repro.arrays.printing import format_array
from repro.values.semiring import (
    SECTION_III_EXAMPLES,
    SECTION_III_NON_EXAMPLES,
    get_op_pair,
)
import repro.values.exotic  # registers the exotic pairs


def show_witness(witness) -> None:
    print(f"    lemma construction [{witness.kind}] from values "
          f"{witness.values!r}:")
    print("    graph edges:",
          ", ".join(f"{k}: {s}→{t}" for k, s, t in witness.graph.edges()))
    print("    Eout:")
    print("      " + format_array(witness.eout).replace("\n", "\n      "))
    print("    Ein:")
    print("      " + format_array(witness.ein).replace("\n", "\n      "))
    print("    EoutᵀEin (dense evaluation):")
    rendered = format_array(witness.product) or "      (all zero)"
    print("      " + rendered.replace("\n", "\n      "))
    print("    " + witness.explain())


def main() -> None:
    print("PAPER EXAMPLES (must certify SAFE)")
    print("=" * 60)
    for name in SECTION_III_EXAMPLES:
        cert = repro.certify(get_op_pair(name), seed=7)
        print(f"\n{cert.summary()}")
        assert cert.safe

    print("\n\nPAPER NON-EXAMPLES (must certify UNSAFE, with witnesses)")
    print("=" * 60)
    for name in SECTION_III_NON_EXAMPLES:
        cert = repro.certify(get_op_pair(name), seed=7)
        print(f"\n{cert.summary().splitlines()[0]}")
        viol = cert.criteria.first_violation()
        print(f"  violated criterion: {viol.property_name} "
              f"(witness {viol.witness!r})")
        if cert.witness is not None:
            show_witness(cert.witness)
        assert not cert.safe

    print("\n\nSEMIRING-LIKE STRUCTURES "
          "(non-associative / non-commutative, still SAFE)")
    print("=" * 60)
    for name in ("skew_plus_times", "plus_twisted_times", "skew_twisted",
                 "max_concat", "gcd_lcm"):
        pair = get_op_pair(name)
        cert = repro.certify(pair, seed=7)
        print(f"\n{pair.display:12s} — {pair.description.split(':')[0]}")
        print("  " + cert.summary().splitlines()[0])
        assert cert.safe

    print("\nEvery catalog verdict matches the paper.")


if __name__ == "__main__":
    main()

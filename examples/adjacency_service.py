#!/usr/bin/env python3
"""Serving adjacency queries: snapshots, deltas, epochs, the cache.

Constructing ``A = Eoutᵀ ⊕.⊗ Ein`` is half the story — the paper's
opening point is that adjacency arrays exist to be *queried*.  This
example walks the :mod:`repro.serve` read path end to end, in process
(the same service the ``repro serve`` HTTP front end wraps):

1. build a weighted flight-style graph and load it into an
   :class:`~repro.serve.AdjacencyService` (epoch 0);
2. run the query vocabulary — neighbors, degrees, k-hop frontiers
   under two different certified op-pairs, path lengths, top-k;
3. stream a delta batch and publish epoch 1: an old snapshot reference
   keeps answering from its own epoch while new queries see the merge;
4. watch the ``(epoch, query)`` LRU cache go cold → warm → invalidated;
5. watch the certification gate refuse an unsafe query algebra.

Run:  python examples/adjacency_service.py
"""

from __future__ import annotations

import repro
from repro.serve import AdjacencyService, ServeError


def main() -> None:
    pair = repro.get_op_pair("plus_times")

    # 1. A small route network: edge weight = seats on that flight leg.
    service = AdjacencyService(pair)
    service.add_edges([
        ("f1", "BOS", "JFK", 120.0, 1.0),
        ("f2", "BOS", "JFK", 30.0, 1.0),   # parallel edge: ⊕-folds
        ("f3", "JFK", "SFO", 180.0, 1.0),
        ("f4", "BOS", "ORD", 90.0, 1.0),
        ("f5", "ORD", "SFO", 150.0, 1.0),
    ])
    service.publish()
    snap = service.snapshot()
    print(f"epoch {snap.epoch}: {len(snap.vertices)} airports, "
          f"{snap.nnz} route entries under {pair.display}")

    # 2. The query vocabulary.
    print("\nneighbors(BOS):       ", service.neighbors("BOS"))
    print("in-neighbors(SFO):    ",
          service.neighbors("SFO", direction="in"))
    print("out-degrees:          ", service.degrees())
    print("2-hop seats from BOS: ", service.khop("BOS", 2))
    print("2-hop min.+ from BOS: ",
          service.khop("BOS", 2, pair="min_plus"))
    print("path lengths from BOS:", service.path_lengths("BOS"))
    print("top-2 heaviest routes:", service.top_k(2))

    # 3. Snapshot isolation: readers holding the old epoch are
    #    undisturbed by a delta publication.
    old = service.snapshot()
    service.add_edge("f6", "SFO", "HNL", 200.0)
    service.add_edge("f7", "BOS", "JFK", 50.0)  # ⊕-merges into 150
    new_epoch = service.publish()
    print(f"\npublished epoch {new_epoch}: "
          f"BOS→JFK now {service.neighbors('BOS')['JFK']}, "
          f"SFO→{list(service.neighbors('SFO'))}")
    print(f"old snapshot (epoch {old.epoch}) still answers: "
          f"BOS→JFK = {old.neighbors_out('BOS')['JFK']}, "
          f"HNL known: {'HNL' in old.vertices}")

    # 4. The (epoch, query) cache: cold, then warm, then invalidated.
    cold = service.query("khop", vertex="BOS", k=2)
    warm = service.query("khop", vertex="BOS", k=2)
    print(f"\nkhop cached: first={cold['cached']}, "
          f"repeat={warm['cached']}")
    stats = service.stats()
    cache = stats["cache"]
    print(f"cache: {cache['hits']} hits / {cache['misses']} misses, "
          f"{cache['invalidations']} invalidated at publication")

    # 5. The gate: GF(2)'s ⊕ cancels (1 ⊕ 1 = 0), so folding queries
    #    under it is refused — Theorem II.1, enforced at the read path.
    try:
        service.khop("BOS", 1, pair="gf2_xor_and")
    except ServeError:
        print("gf2_xor_and refused as a query algebra, "
              "as Theorem II.1 demands")

    print("\nadjacency service demo complete")


if __name__ == "__main__":
    main()

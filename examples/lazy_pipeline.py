#!/usr/bin/env python3
"""Lazy expressions: capture, optimize with certified rewrites, execute.

The paper's construction ``A = Eoutᵀ ⊕.⊗ Ein`` is an *expression*, and
the :mod:`repro.expr` engine treats it as one: ``lazy()`` captures a
chain of array operations as a DAG, the optimizer rewrites it under
rules whose algebraic preconditions are verified through the
certification machinery, a cost model sizes every intermediate, and
only then does anything execute.  This example walks the surface:

1. capture the incidence-to-adjacency expression lazily and print the
   optimizer's ``explain()`` transcript — the fusion rewrite and the
   Theorem II.1 properties that licensed it;
2. check the optimized plan equals the eager construction exactly;
3. fuse a degree-style reduction *into* the product (the full
   adjacency array is never materialized) and watch the license name
   associativity, commutativity and distributivity;
4. watch a rewrite get *refused*: ``(AB)ᵀ = BᵀAᵀ`` needs commutative
   ``⊗``, and ``max.concat`` fails the check with a concrete witness;
5. run a 3-hop expression whose hops share one adjacency leaf after
   common-subexpression elimination;
6. route an over-budget plan through the out-of-core shard executor;
7. build a ``min.+`` shortest-path plan and watch the kernel routing:
   the non-``+.×`` product rides the ``sortmerge`` kernel, the
   transcript reports its calibrated cost, and the relaxed distances
   match Bellman–Ford exactly.

Run:  python examples/lazy_pipeline.py
"""

from __future__ import annotations

import repro
from repro.expr import evaluate, explain, lazy, plan
from repro.graphs.generators import rmat_multigraph


def main() -> None:
    graph = rmat_multigraph(7, 600, seed=42)
    weights = {k: float(1 + (i % 9))
               for i, k in enumerate(graph.edge_keys)}
    pair = repro.get_op_pair("plus_times")
    eout, ein = repro.incidence_arrays(graph, zero=pair.zero,
                                       out_values=weights,
                                       in_values=weights)
    print(f"workload: {graph.num_edges} edges over "
          f"{graph.num_vertices} vertices\n")

    # 1. Capture lazily; nothing has executed yet.
    expr = lazy(eout, "Eout").T.matmul(lazy(ein, "Ein"), pair)
    print("— the optimizer's plan —")
    print(explain(expr))

    # 2. Execute: identical to the eager library call.
    adjacency = evaluate(expr)
    batch = repro.adjacency_array(eout, ein, pair)
    assert adjacency == batch
    print(f"\nfused plan == eager construction "
          f"({adjacency.nnz} stored entries)\n")

    # 3. Reduction fused into the product: out-strength per vertex
    #    without materializing the adjacency array first.
    strength = expr.reduce_rows(pair.add)
    print("— reduction fused into the product —")
    print(explain(strength))
    reduced = evaluate(strength)
    assert {r: v for r, _c, v in reduced.entries()} == \
        repro.reduce_rows(adjacency, pair.add)
    print()

    # 4. A refusal: transpose pushdown needs commutative ⊗, and
    #    max.concat's ⊗ is string concatenation.
    mc = repro.get_op_pair("max_concat")
    svals = {k: "ab"[i % 2] for i, k in enumerate(graph.edge_keys)}
    seo, sei = repro.incidence_arrays(graph, zero=mc.zero,
                                      out_values=svals, in_values=svals)
    refused = plan(lazy(seo, "E").T.matmul(lazy(sei, "F"), mc).T)
    line = next(rf for rf in refused.refused
                if rf.rule == "transpose_pushdown")
    print("— a refused rewrite —")
    print(f"{line.rule}: {line.reason}\n")

    # 5. A 3-hop chain: after CSE every hop shares one adjacency leaf.
    vertices = adjacency.row_keys.union(adjacency.col_keys)
    square = adjacency.with_keys(vertices, vertices)
    source = next(iter(square.rows_nonempty()))
    from repro.expr import khop_frontier
    frontier = khop_frontier(square, source, 3, pair)
    print(f"3-hop frontier from {source!r}: {len(frontier)} vertices")

    # 6. Over-budget plans spill to the out-of-core shard engine.
    tight = plan(lazy(eout).T.matmul(lazy(ein), pair), memory_budget=1)
    assert tight.shard_nodes
    assert tight.execute() == batch
    print("over-budget plan routed through the shard executor "
          "and matched batch\n")

    # 7. A min.+ shortest-path plan: the same expression surface, a
    #    different algebra.  The adjacency product is not +.× so scipy
    #    is off the table — the plan routes it through the sortmerge
    #    kernel, and explain() shows the routing with its calibrated
    #    per-term cost.
    mp = repro.get_op_pair("min_plus")
    weo, wei = repro.incidence_arrays(graph, zero=mp.zero,
                                      out_values={k: 0.0 for k in weights},
                                      in_values=weights)
    sp_expr = lazy(weo, "Eout").T.matmul(lazy(wei, "Ein"), mp)
    print("— min.+ shortest-path plan (sortmerge routing) —")
    transcript = explain(sp_expr)
    print(transcript)
    assert "kernel=sortmerge" in transcript
    wadj = evaluate(sp_expr)
    square_w = wadj.with_keys(vertices, vertices)
    from repro.graphs.algorithms import shortest_path_lengths
    dist = shortest_path_lengths(square_w, source)
    reachable = [v for v in dist if dist[v] < float("inf")]
    print(f"min.+ distances from {source!r}: {len(reachable)} vertices "
          f"reachable\n")

    print("lazy pipeline demo complete")


if __name__ == "__main__":
    main()

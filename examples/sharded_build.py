#!/usr/bin/env python3
"""Out-of-core construction: shard an edge set, build, ⊕-merge.

The paper's construction ``A = Eoutᵀ ⊕.⊗ Ein`` contracts over the edge
dimension, so it distributes over any edge partition — the identity the
:mod:`repro.shard` engine turns into out-of-core machinery.  This
example walks the whole surface:

1. generate an R-MAT multigraph and weight its edges;
2. run the one-shot API and check it equals batch construction exactly;
3. stage the plan → execute flow with a kept workdir, and inspect the
   JSON manifest and per-shard spill files it leaves behind;
4. round-trip through the TSV interchange format — the same path the
   ``repro build`` CLI takes;
5. watch the certification gate refuse an unsafe algebra.

Run:  python examples/sharded_build.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import repro
from repro.arrays.io import read_tsv_triples, write_tsv_triples
from repro.graphs.generators import rmat_multigraph
from repro.shard import ShardError


def main() -> None:
    # 1. A skewed multigraph (the standard GraphBLAS-style workload)
    #    with integer edge weights.
    graph = rmat_multigraph(7, 600, seed=42)
    weights = {k: float(1 + (i % 9))
               for i, k in enumerate(graph.edge_keys)}
    pair = repro.get_op_pair("plus_times")
    eout, ein = repro.incidence_arrays(graph, zero=pair.zero,
                                       out_values=weights,
                                       in_values=weights)
    print(f"workload: {graph.num_edges} edges over "
          f"{graph.num_vertices} vertices")

    # 2. One-shot: partition into 4 on-disk shards, build each in a
    #    process pool, ⊕-merge pairwise.  Same answer as batch.
    batch = repro.adjacency_array(eout, ein, pair)
    sharded = repro.sharded_adjacency((eout, ein), pair, n_shards=4,
                                      executor="process", n_workers=4)
    assert sharded == batch
    print(f"sharded == batch: {sharded.nnz} stored entries, "
          "bit-identical")

    # 3. The staged flow, keeping the shard set around for inspection.
    workdir = Path(tempfile.mkdtemp(prefix="sharded-build-"))
    plan = repro.ShardedAdjacencyPlan(pair, n_shards=4,
                                      executor="thread",
                                      workdir=workdir, keep_workdir=True)
    manifest = plan.partition((eout, ein))
    print(f"\nmanifest at {workdir / 'manifest.json'}:")
    doc = json.loads(manifest.to_json())
    for shard in doc["shards"]:
        print(f"  shard {shard['index']}: {shard['n_edges']} edges, "
              f"{shard['n_out_entries']}+{shard['n_in_entries']} entries")
    result = plan.execute()
    assert result.adjacency == batch
    print("per-shard result nnz:", list(result.shard_nnz))
    print("timings:", {k: f"{v:.3f}s" for k, v in result.timings.items()})

    # 4. The TSV interchange round trip (what `repro build` does).
    write_tsv_triples(eout, workdir / "eout.tsv")
    write_tsv_triples(ein, workdir / "ein.tsv")
    from_tsv = repro.sharded_adjacency(
        (workdir / "eout.tsv", workdir / "ein.tsv"), pair,
        n_shards=4, strategy="hash")
    assert from_tsv == batch
    write_tsv_triples(from_tsv, workdir / "adj.tsv")
    print(f"\nTSV round trip ok → {workdir / 'adj.tsv'}")

    # 5. The gate: ℤ's +.× has cancelling sums (fails zero-sum-freeness),
    #    so sharded construction refuses it — same stance the streaming
    #    builder takes, for the same Theorem II.1 reason.
    try:
        repro.ShardedAdjacencyPlan(repro.get_op_pair("int_plus_times"))
    except ShardError:
        print("int_plus_times refused by the certification gate, "
              "as Theorem II.1 demands")

    print("\nsharded construction verified against batch")


if __name__ == "__main__":
    main()

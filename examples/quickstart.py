#!/usr/bin/env python3
"""Quickstart: from a graph to an adjacency array and back.

Covers the paper's core loop in ~40 lines of API:

1. build a directed multigraph (parallel edges included);
2. derive its incidence arrays ``Eout``, ``Ein`` (Definition I.4);
3. multiply ``A = EoutᵀEin`` over a chosen ``⊕.⊗`` pair;
4. check the result *is* an adjacency array (Definition I.5);
5. see why certification matters, by trying an unsafe algebra.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # 1. A small multigraph: two people email each other repeatedly.
    graph = repro.EdgeKeyedDigraph([
        ("msg01", "alice", "bob"),
        ("msg02", "alice", "bob"),      # parallel edge
        ("msg03", "bob", "carol"),
        ("msg04", "carol", "carol"),    # self-loop
    ])
    print(f"graph: {graph!r}")
    print(f"  Kout = {tuple(graph.out_vertices)}")
    print(f"  Kin  = {tuple(graph.in_vertices)}")

    # 2. Incidence arrays.  Values default to 1; here we weight the
    #    out-side by message length.
    lengths = {"msg01": 120, "msg02": 30, "msg03": 45, "msg04": 5}
    eout, ein = repro.incidence_arrays(graph, out_values=lengths)
    print("\nEout (edges × source vertices):")
    print(repro.format_array(eout))

    # 3. A = Eoutᵀ ⊕.⊗ Ein over +.× — total message volume per pair.
    plus_times = repro.get_op_pair("plus_times")
    adj = repro.adjacency_array(eout, ein, plus_times)
    print("\nA = Eoutᵀ +.× Ein (total volume):")
    print(repro.format_array(adj))
    assert adj["alice", "bob"] == 150          # 120 + 30

    # 4. Definition I.5 holds — and Theorem II.1 says it always will,
    #    because +.× over ℝ≥0 satisfies the three criteria.
    assert repro.is_adjacency_array_of_graph(adj, graph)
    cert = repro.certify(plus_times)
    print("\ncertification:", cert.summary().splitlines()[0])

    # 5. An unsafe algebra: ℤ with +.× has cancelling weights.  The
    #    certification engine refuses it *and produces the witness graph*.
    bad = repro.certify(repro.get_op_pair("int_plus_times"))
    print("\nint_plus_times:", bad.summary().splitlines()[0])
    print("  witness:", bad.witness.explain())

    # The reverse graph comes for free (Corollary III.1).
    rev = repro.reverse_adjacency_array(eout, ein, plus_times)
    assert repro.is_adjacency_array_of_graph(rev, graph.reverse())
    print("\nreverse-graph adjacency verified (Corollary III.1)")


if __name__ == "__main__":
    main()

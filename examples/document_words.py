#!/usr/bin/env python3
"""Section III's set-valued example: documents, words, and ``∪.∩``.

``∪.∩`` on a non-trivial power set has zero divisors — disjoint non-empty
sets intersect to ∅ — so Theorem II.1 says it is *not* safe in general.
Yet on document×word data with entries "sets of words shared by
documents", the structure guarantees a nonempty set is never multiplied
by a disjoint nonempty set, and ``EᵀE`` is an adjacency array whose
entries are exactly the shared-word sets.

This example shows all three acts:

1. the certification failure (with the two-disjoint-sets witness);
2. the structured corpus where the product nevertheless works;
3. an *unstructured* set-valued pair where the failure actually bites.

Run:  python examples/document_words.py
"""

from __future__ import annotations

import repro
from repro.arrays.associative import AssociativeArray
from repro.core.construction import correlate, expected_adjacency_pattern
from repro.datasets.documents import (
    example_word_sets,
    shared_word_incidence,
)
from repro.values.semiring import get_op_pair


def main() -> None:
    pair = get_op_pair("union_intersection")

    # -- Act 1: the algebra is not safe -----------------------------------
    cert = repro.certify(pair, seed=3)
    print(cert.summary())
    assert not cert.safe

    # -- Act 2: structure rescues it ---------------------------------------
    words = example_word_sets()
    print("\ncorpus:")
    for doc, ws in words.items():
        print(f"  {doc}: {{{', '.join(sorted(ws))}}}")

    e = shared_word_incidence(words)
    print("\nE(i, j) = words shared by documents i and j "
          "(diagonal = own words):")
    print(repro.format_array(e, max_col_width=26))

    product = correlate(e, e, pair)
    print("\nEᵀE over ∪.∩:")
    print(repro.format_array(product, max_col_width=26))

    # The paper's claim, verified: entries are exactly the shared sets.
    for (i, j) in product.nonzero_pattern():
        assert frozenset(product.get(i, j)) == frozenset(e.get(i, j))
    print("\n✓ every entry equals the pair's shared-word set")

    # -- Act 3: without the structure the failure bites --------------------
    zero = frozenset()
    loose = AssociativeArray(
        {("m", "i"): frozenset({"x"}), ("m", "j"): frozenset({"y"})},
        row_keys=["m"], col_keys=["i", "j"], zero=zero)
    bad = correlate(loose, loose, pair)
    expected = expected_adjacency_pattern(loose, loose)
    print("\nunstructured pair: document m shares 'x' with i and 'y' "
          "with j")
    print(f"  expected adjacency pattern: {sorted(expected)}")
    print(f"  ∪.∩ product pattern:        {sorted(bad.nonzero_pattern())}")
    assert ("i", "j") in expected
    assert ("i", "j") not in bad.nonzero_pattern()
    print("  → the (i, j) edge vanished: the zero-divisor failure, live")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Flight network: one incidence dataset, four algebras, four analyses.

A small airline network built once as incidence arrays, then correlated
under different op-pairs to answer different questions — Section IV's
moral ("each can be useful for constructing graph adjacency arrays in the
appropriate context") on realistic data:

* ``min.+``   — fastest connections, then all-pairs shortest travel times
  via the semiring closure;
* ``max.min`` — widest-bottleneck (largest guaranteed seat count) routes;
* ``+.×``     — route multiplicity (how many distinct flights);
* ``min₍lex₎.+₂`` — multi-objective: cheapest fare, ties broken by hops,
  with genuinely tuple-valued adjacency entries;
* ``logaddexp.+`` — log-space probability that at least... (here: total
  log-weighted connectivity), showing the numerically stable semiring.

Run:  python examples/flight_network.py
"""

from __future__ import annotations

import math

import repro
from repro.graphs.paths import (
    all_pairs_shortest_paths,
    all_pairs_widest_paths,
)
from repro.values.extensions import LEX_MIN_PLUS, LOG_SEMIRING
from repro.values.semiring import get_op_pair

#: (flight, from, to, minutes, seats, fare)
FLIGHTS = [
    ("f01", "BOS", "JFK", 74.0, 180.0, 120.0),
    ("f02", "BOS", "JFK", 78.0, 90.0, 95.0),
    ("f03", "JFK", "SFO", 383.0, 200.0, 310.0),
    ("f04", "JFK", "SFO", 390.0, 160.0, 280.0),
    ("f05", "BOS", "SFO", 400.0, 120.0, 450.0),
    ("f06", "SFO", "SEA", 125.0, 150.0, 140.0),
    ("f07", "JFK", "SEA", 360.0, 100.0, 330.0),
    ("f08", "SEA", "BOS", 320.0, 140.0, 300.0),
]


def build_graph():
    g = repro.EdgeKeyedDigraph((k, s, t) for k, s, t, *_ in FLIGHTS)
    minutes = {k: m for k, _s, _t, m, _c, _f in FLIGHTS}
    seats = {k: c for k, _s, _t, _m, c, _f in FLIGHTS}
    fares = {k: f for k, _s, _t, _m, _c, f in FLIGHTS}
    return g, minutes, seats, fares


def main() -> None:
    g, minutes, seats, fares = build_graph()
    verts = g.vertices

    def adjacency(pair, weights):
        eout, ein = repro.incidence_arrays(
            g, zero=pair.zero, out_values=weights, in_values=pair.one)
        adj = repro.adjacency_array(eout, ein, pair)
        assert repro.is_adjacency_array_of_graph(adj, g)
        return adj.with_keys(row_keys=verts, col_keys=verts)

    # ---- min.+ : fastest direct flights, then APSP closure ---------------
    mp = get_op_pair("min_plus")
    fastest = adjacency(mp, minutes)
    print("fastest direct flight (minutes), min.+ adjacency:")
    print(repro.format_array(fastest))
    apsp = all_pairs_shortest_paths(fastest)
    print(f"\nBOS→SEA fastest total: {apsp.get('BOS', 'SEA'):.0f} min "
          "(via JFK→SFO or JFK direct legs)")
    assert apsp.get("BOS", "SEA") == min(
        74 + 383 + 125, 74 + 360, 400 + 125)

    # ---- max.min : bottleneck seats ---------------------------------------
    mm = get_op_pair("max_min")
    seats_adj = adjacency(mm, seats)
    widest = all_pairs_widest_paths(seats_adj)
    print(f"\nlargest guaranteed seat block BOS→SEA: "
          f"{widest.get('BOS', 'SEA'):.0f} seats")

    # ---- +.× : how many distinct routes -----------------------------------
    pt = get_op_pair("plus_times")
    counts = adjacency(pt, {k: 1.0 for k in g.edge_keys})
    print(f"\ndistinct direct flights BOS→JFK: {counts['BOS', 'JFK']:.0f}")
    assert counts["BOS", "JFK"] == 2

    # ---- lexicographic (fare, hops) ----------------------------------------
    lex = LEX_MIN_PLUS
    fare_pairs = {k: (fares[k], 1.0) for k in g.edge_keys}
    lex_adj = adjacency(lex, fare_pairs)
    fare, hops = lex_adj["JFK", "SFO"]
    print(f"\ncheapest JFK→SFO fare: ${fare:.0f} ({hops:.0f} hop) — "
          "ties broken by hop count, tuple-valued adjacency")
    assert (fare, hops) == (280.0, 1.0)

    # ---- log semiring -------------------------------------------------------
    log = LOG_SEMIRING
    # Interpret each flight as (log of) on-time probability.
    probs = {"f01": 0.9, "f02": 0.8, "f03": 0.85, "f04": 0.7,
             "f05": 0.95, "f06": 0.9, "f07": 0.6, "f08": 0.8}
    log_adj = adjacency(log, {k: math.log(p) for k, p in probs.items()})
    agg = math.exp(log_adj["BOS", "JFK"])
    print(f"\nlog-semiring accumulation BOS→JFK: exp(⊕ logs) = {agg:.2f} "
          "(= 0.9 + 0.8, stable in log space)")
    assert math.isclose(agg, 1.7)

    print("\nSame incidence data, four algebras, four different graphs — "
          "the paper's Section IV in action.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Kernel scaling study: generic fold vs vectorised SpGEMM kernels.

Times adjacency construction ``EoutᵀEin`` on R-MAT multigraphs across
sizes for two op-pairs (``+.×`` with a scipy fast path; ``min.+`` on the
general-ufunc reduceat path), printing a table of milliseconds and the
speedup of the best vectorised kernel over the generic reference.

This is the DESIGN.md `scaling` experiment; pytest-benchmark versions of
the same measurements live in benchmarks/bench_kernel_scaling.py.

Run:  python examples/scaling_study.py [--quick]
"""

from __future__ import annotations

import sys
import time

from repro.arrays.matmul import multiply_generic
from repro.arrays.sparse_backend import multiply_vectorized, vectorizable
from repro.graphs.generators import rmat_multigraph, random_incidence_values
from repro.graphs.incidence import incidence_arrays
from repro.values.semiring import get_op_pair


def _operands(scale, n_edges, pair, seed=99):
    graph = rmat_multigraph(scale, n_edges, seed=seed)
    ow, iw = random_incidence_values(graph, pair, seed=seed + 1)
    eout, ein = incidence_arrays(graph, zero=pair.zero,
                                 out_values=ow, in_values=iw)
    return eout.transpose(), ein


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best * 1e3  # ms


def main() -> None:
    quick = "--quick" in sys.argv
    sizes = [(5, 150), (7, 800)] if quick else [(5, 150), (7, 800),
                                                (9, 4000), (11, 20000)]
    print(f"{'pair':10s} {'2^scale':>8s} {'edges':>7s} "
          f"{'generic ms':>11s} {'reduceat ms':>12s} {'scipy ms':>9s} "
          f"{'speedup':>8s}")
    for pair_name in ("plus_times", "min_plus"):
        pair = get_op_pair(pair_name)
        for scale, n_edges in sizes:
            a, b = _operands(scale, n_edges, pair)
            assert vectorizable(a, b, pair)
            t_gen = _time(lambda: multiply_generic(a, b, pair))
            t_red = _time(lambda: multiply_vectorized(
                a, b, pair, kernel="reduceat"))
            if pair_name == "plus_times":
                t_sci = _time(lambda: multiply_vectorized(
                    a, b, pair, kernel="scipy"))
                sci_txt = f"{t_sci:9.2f}"
                best_vec = min(t_red, t_sci)
            else:
                sci_txt = f"{'—':>9s}"
                best_vec = t_red
            # Correctness cross-check while we are here.
            ref = multiply_generic(a, b, pair)
            got = multiply_vectorized(a, b, pair, kernel="reduceat")
            assert got.allclose(ref)
            print(f"{pair.display:10s} {2**scale:>8d} {n_edges:>7d} "
                  f"{t_gen:>11.2f} {t_red:>12.2f} {sci_txt} "
                  f"{t_gen / best_vec:>7.1f}x")
    print("\n(speedup = generic / best vectorised; shapes, not absolute "
          "numbers, are the claim)")


if __name__ == "__main__":
    main()
